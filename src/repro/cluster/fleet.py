"""Fleet nodes and the cluster-level dispatcher.

A :class:`FleetNode` bundles everything one backend server needs: the
server model, its capped allocator, a scheduling strategy (CoCG or any
baseline), telemetry, and QoS tracking.  Nodes may sit on different
platforms — the §IV-D migration rule rescales each game profile once per
platform, keeping the trained predictors.

:class:`ClusterScheduler` is the front door: it receives launch requests
and routes each to a node.  Placement is final (cloud games cannot be
migrated, §I), so the dispatch policy is the only fleet-level decision:

* ``first-fit`` — first node whose admission test passes (fast, the
  OnLive-style policy the related work describes);
* ``best-fit`` — among admitting nodes, the one with the *least*
  headroom after placement (bin-packing pressure, consolidates load);
* ``round-robin`` — rotate the starting node (load spreading).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple


from repro.baselines.base import SchedulingStrategy
from repro.core.pipeline import GameProfile
from repro.games.session import GameSession
from repro.obs.naming import (
    CLUSTER_DISPATCH,
    CLUSTER_LIFECYCLE,
    CLUSTER_PUMP_ROUNDS,
    STREAM_CLUSTER,
    lifecycle_span,
)
from repro.obs.observer import Observer
from repro.platform_.allocator import Allocator
from repro.platform_.profile import PlatformProfile, REFERENCE_PLATFORM
from repro.platform_.qos import QoSTracker
from repro.platform_.server import GPUDevice, Server
from repro.sim.telemetry import TelemetryRecorder
from repro.util.effects import shard_entry
from repro.util.rng import Seed, derive_seed
from repro.util.validation import check_in
from repro.workloads.requests import GameRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serve imports cluster)
    from repro.serve.gateway import AdmissionGateway, AdmissionOutcome
    from repro.trace.recorder import TraceRecorder

__all__ = [
    "NodeHealth",
    "DeadLetter",
    "PendingRequest",
    "FleetNode",
    "ClusterScheduler",
    "dispatch_order",
]


class NodeHealth(Enum):
    """Dispatch-visible node lifecycle state.

    Only ``up`` admits new sessions.  ``warming`` is a provisioned
    standby that has not joined dispatch yet; ``draining`` and
    ``reclaim-notice`` keep their sessions but admit nothing (the latter
    is a spot node living out its reclamation notice window); ``down``
    has lost capacity and sessions alike.  The request-phase states
    (``requested``/``provisioning``) live in
    :class:`~repro.cluster.provisioner.Provisioner` — they precede the
    node object itself.
    """

    WARMING = "warming"
    UP = "up"
    DRAINING = "draining"
    RECLAIM_NOTICE = "reclaim-notice"
    DOWN = "down"


@dataclass(frozen=True)
class DeadLetter:
    """A request the cluster gave up on (with why and when).

    ``fault_index`` is the position of the originating fault in the
    replayed :class:`~repro.faults.plan.FaultPlan` (``scheduled()``
    order) when a fault displaced the request — ``None`` for organic
    dead letters (overflow, patience, retries without a fault cause).
    """

    request: GameRequest
    time: float
    attempts: int
    reason: str
    fault_index: Optional[int] = None


@dataclass
class PendingRequest:
    """A queued request with its retry state.

    ``attempts`` counts failed dispatch rounds; ``incarnation`` counts
    crash-requeues (it suffixes the session id so a restarted run never
    collides with its dead predecessor's telemetry); ``fault_index``
    remembers which fault displaced the request so a later dead letter
    stays attributable.
    """

    request: GameRequest
    attempts: int = 0
    incarnation: int = 0
    next_try: float = 0.0
    fault_index: Optional[int] = None


class FleetNode:
    """One backend server and its local control plane.

    Parameters
    ----------
    node_id:
        Unique node name.
    strategy:
        The node's scheduling strategy (each node owns its own instance).
    profiles:
        Reference-platform game profiles; rescaled to this node's
        platform automatically (§IV-D).
    platform:
        The node's hardware class.
    server:
        Optional explicit server model; default one-GPU node.
    utilization_cap:
        Allocator budget fraction.
    seed:
        Telemetry-noise seed.
    """

    def __init__(
        self,
        node_id: str,
        strategy: SchedulingStrategy,
        profiles: Dict[str, GameProfile],
        *,
        platform: PlatformProfile = REFERENCE_PLATFORM,
        server: Optional[Server] = None,
        utilization_cap: float = 0.95,
        seed: Seed = 0,
    ):
        self.node_id = str(node_id)
        self.platform = platform
        self.server = (
            server if server is not None else Server(node_id, gpus=[GPUDevice()])
        )
        self.allocator = Allocator(self.server, utilization_cap=utilization_cap)
        if platform is not REFERENCE_PLATFORM:
            profiles = {
                name: profile.rescaled(platform)
                for name, profile in sorted(profiles.items())
            }
        # Canonical key order: profile dicts arrive in caller-dependent
        # order, and every downstream scan (strategy attach, telemetry,
        # fault matching) must not inherit it.
        self.profiles = dict(sorted(profiles.items()))
        self.strategy = strategy
        self.strategy.attach(self.allocator, self.profiles)
        self.telemetry = TelemetryRecorder(seed=derive_seed(seed, "tel", node_id))
        self.qos = QoSTracker()
        self.sessions: Dict[str, GameSession] = {}
        self.requests: Dict[str, GameRequest] = {}
        self.completed: Dict[str, int] = {}
        self.health = NodeHealth.UP
        self.obs: Optional[Observer] = None
        self.trace: Optional["TraceRecorder"] = None
        self._c_lifecycle = None

    # ------------------------------------------------------------------
    def attach_observer(self, obs: Observer) -> None:
        """Wire this node's control plane into a shared observer.

        Forwards to the QoS tracker (degraded-seconds counter) and, when
        the strategy exposes a CoCG scheduler, to the scheduler
        (decision counters, control spans) and its distributor
        (Algorithm-1 counters).  Lifecycle transitions additionally land
        in ``cluster_lifecycle_transitions_total{state}``.
        """
        self.obs = obs
        self._c_lifecycle = obs.counter(
            CLUSTER_LIFECYCLE,
            "Node lifecycle transitions by resulting state.",
            ("state",),
        )
        self.qos.attach_observer(obs, node=self.node_id)
        sched = getattr(self.strategy, "scheduler", None)
        if sched is not None and hasattr(sched, "attach_observer"):
            sched.attach_observer(obs, node=self.node_id)
            distributor = getattr(sched, "distributor", None)
            if distributor is not None and hasattr(
                distributor, "attach_observer"
            ):
                distributor.attach_observer(obs)

    def attach_trace(self, trace: "TraceRecorder") -> None:
        """Record this node's session stage timeline into a trace."""
        self.trace = trace

    # ------------------------------------------------------------------
    def try_admit(
        self,
        request: GameRequest,
        *,
        time: float,
        seed: int,
        incarnation: int = 0,
    ) -> bool:
        """Instantiate the request's session *on this node's platform*
        and offer it to the local strategy.

        ``incarnation > 0`` marks a crash-requeued relaunch; it suffixes
        the session id so the restart never aliases the dead run's
        telemetry and QoS history.
        """
        run = f"r{request.request_id}" + (
            f".{incarnation}" if incarnation else ""
        )
        session = GameSession(
            request.spec,
            request.script,
            player=request.player,
            seed=seed,
            platform=self.platform,
            session_id=f"{request.spec.name}-{run}@{self.node_id}",
        )
        if self.strategy.try_admit(session, time=time):
            self.sessions[session.session_id] = session
            self.requests[session.session_id] = request
            return True
        return False

    def tick(self, t: int) -> None:
        """Advance every hosted session one second."""
        degraded = set(self.strategy.degraded_sessions())
        for sid in list(self.sessions):
            session = self.sessions[sid]
            allocation = self.strategy.allocation_of(sid)
            tick = session.advance(allocation)
            self.telemetry.record(t, sid, tick.demand, allocation)
            self.qos.record_second(
                sid,
                tick.nominal_fps,
                tick.demand,
                allocation,
                frame_lock=tick.frame_lock,
            )
            if sid in degraded:
                self.qos.note_degraded(sid)
            if tick.stage_completed and self.trace is not None:
                # The session just appended (stage, start, end) — in
                # session-elapsed seconds — to its history.
                stage_name, start, end = session.history[-1]
                self.trace.record_stage(
                    t, sid, stage_name, start=float(start), end=float(end),
                    node=self.node_id,
                )
            if tick.finished:
                self.strategy.release(sid, time=t)
                self.completed[session.spec.name] = (
                    self.completed.get(session.spec.name, 0) + 1
                )
                del self.sessions[sid]
                self.requests.pop(sid, None)

    def control(self, t: float) -> None:
        """Run the node's periodic control loop."""
        self.strategy.control(t, self.telemetry)

    # ------------------------------------------------------------------
    # Fault surface
    # ------------------------------------------------------------------
    def kill_matching(
        self,
        time: float,
        *,
        session: str = "*",
        limit: Optional[int] = None,
    ) -> List[Tuple[str, GameRequest]]:
        """Kill hosted sessions whose id starts with ``session``.

        Returns the ``(session_id, originating request)`` pairs, in
        admission order, so the cluster can requeue them.
        """
        killed: List[Tuple[str, GameRequest]] = []
        for sid in list(self.sessions):
            if session != "*" and not sid.startswith(session):
                continue
            if limit is not None and len(killed) >= limit:
                break
            self.strategy.release(sid, time=time)
            request = self.requests.pop(sid)
            del self.sessions[sid]
            killed.append((sid, request))
            self.telemetry.record_fault_event(time, "session-kill", sid)
        return killed

    def transition(
        self, health: NodeHealth, time: float, kind: str, detail: str = ""
    ) -> None:
        """The single lifecycle-transition point.

        Records the transition as a telemetry fault event (so it enters
        the fleet digest) and, when observed, counts it in
        ``cluster_lifecycle_transitions_total{state}``.
        """
        self.health = health
        self.telemetry.record_fault_event(time, kind, detail or self.node_id)
        if self._c_lifecycle is not None:
            self.obs.tick(time)
            self._c_lifecycle.labels(state=health.value).inc(time=time)

    def crash(self, time: float) -> List[Tuple[str, GameRequest]]:
        """Take the node ``down``; every hosted session dies."""
        self.health = NodeHealth.DOWN  # before the kill: no re-admission
        killed = self.kill_matching(time)
        self.transition(
            NodeHealth.DOWN, time, "node-crash",
            f"{self.node_id}: {len(killed)} sessions killed",
        )
        return killed

    def recover(self, time: float) -> None:
        """Bring the node back to ``up``."""
        self.transition(NodeHealth.UP, time, "node-recover")

    def drain(self, time: float) -> None:
        """Stop admitting; keep running sessions."""
        self.transition(NodeHealth.DRAINING, time, "node-drain")

    def warm(self, time: float) -> None:
        """Mark the node a pre-booted standby (no dispatch yet)."""
        self.transition(NodeHealth.WARMING, time, "node-warming")

    def promote(self, time: float) -> None:
        """Bring a warm standby into dispatch rotation."""
        self.transition(NodeHealth.UP, time, "node-up")

    def reclaim_notice(self, time: float, *, notice: float) -> None:
        """Start the spot-reclamation notice window.

        The node keeps running its sessions but admits nothing; after
        ``notice`` seconds the platform takes the capacity away
        (:meth:`ClusterScheduler.finish_reclaim`).
        """
        self.transition(
            NodeHealth.RECLAIM_NOTICE, time, "reclaim-notice",
            f"{self.node_id}: down in {notice:.0f}s",
        )

    # ------------------------------------------------------------------
    def headroom(self) -> float:
        """Relative slack of the tightest dimension (0 = full)."""
        return self.server.headroom_fraction()

    @property
    def n_running(self) -> int:
        """Sessions currently hosted on this node."""
        return len(self.sessions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FleetNode({self.node_id!r}, platform={self.platform.name!r}, "
            f"running={self.n_running})"
        )


def dispatch_order(
    nodes: Sequence[FleetNode],
    policy: str,
    *,
    rr_offset: int = 0,
) -> List[FleetNode]:
    """The single candidate-order/tie-break policy of the fleet.

    Both direct dispatch (:meth:`ClusterScheduler.dispatch`) and the
    serve-layer micro-batcher order candidates through this function, so
    the two paths always agree on where a request lands:

    * ``first-fit`` — healthy nodes in construction order;
    * ``best-fit`` — healthy nodes by ``(headroom, node id)``: fullest
      first, with the node id as a deterministic tie-break when two
      nodes report identical headroom;
    * ``round-robin`` — the healthy list rotated by ``rr_offset``.

    "Healthy" is exactly :attr:`NodeHealth.UP` — a ``warming`` standby,
    a ``draining`` node, a spot node under ``reclaim-notice`` and a
    ``down`` node are all non-candidates in every policy.
    """
    up = [n for n in nodes if n.health is NodeHealth.UP]
    if policy == "round-robin":
        if not up:
            return []
        k = rr_offset % len(up)
        return up[k:] + up[:k]
    if policy == "best-fit":
        # Try the fullest nodes first: consolidates games so empty
        # nodes stay empty (bin-packing pressure).
        return sorted(up, key=lambda n: (n.headroom(), n.node_id))
    return up  # first-fit


class ClusterScheduler:
    """The Fig-1 cloud-game scheduler: routes requests across nodes.

    Parameters
    ----------
    nodes:
        The fleet.
    policy:
        ``"first-fit"``, ``"best-fit"`` or ``"round-robin"``.
    max_retries:
        Dispatch rounds a queued request survives before it is
        dead-lettered.
    queue_limit:
        Bound on the retry queue; overflow dead-letters immediately.
    backoff_base / backoff_factor / backoff_cap:
        Exponential retry backoff: the ``k``-th failed attempt waits
        ``min(cap, base · factor^(k-1))`` seconds.
    """

    POLICIES = ("first-fit", "best-fit", "round-robin")

    def __init__(
        self,
        nodes: Sequence[FleetNode],
        *,
        policy: str = "first-fit",
        max_retries: int = 25,
        queue_limit: int = 512,
        backoff_base: float = 5.0,
        backoff_factor: float = 2.0,
        backoff_cap: float = 60.0,
    ):
        if not nodes:
            raise ValueError("a cluster needs at least one node")
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate node ids: {ids}")
        check_in("policy", policy, self.POLICIES)
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if backoff_base < 0 or backoff_factor < 1 or backoff_cap < 0:
            raise ValueError(
                "backoff needs base >= 0, factor >= 1, cap >= 0; got "
                f"{backoff_base}, {backoff_factor}, {backoff_cap}"
            )
        self.nodes: List[FleetNode] = list(nodes)
        self.policy = policy
        self.max_retries = int(max_retries)
        self.queue_limit = int(queue_limit)
        self.backoff_base = float(backoff_base)
        self.backoff_factor = float(backoff_factor)
        self.backoff_cap = float(backoff_cap)
        self._rr = 0
        self._queue: List[PendingRequest] = []  # lint: disable=CG009 - bounded by queue_limit in submit()
        self.gateway: Optional["AdmissionGateway"] = None
        self.provisioner = None  # set by Provisioner.attach_cluster
        self._incarnations: Dict[int, int] = {}
        self.dead_letters: List[DeadLetter] = []
        self.dispatched = 0
        self.deferred = 0
        self.requeues = 0
        self.requeue_dupes = 0
        self.evictions = 0
        self.abandoned = 0
        self.reclaimed_nodes = 0
        #: Capacity the fleet is *supposed* to hold (UP nodes).  The
        #: backpressure coupling in the gateway compares the live UP
        #: count against this; a provisioner overrides it with its
        #: ``target_up``.
        self.capacity_target = len(self.nodes)
        self.obs: Optional[Observer] = None
        self.trace: Optional["TraceRecorder"] = None
        self._c_dispatched = None
        self._c_deferred = None
        self._c_pump_rounds = None

    # ------------------------------------------------------------------
    def attach_observer(self, obs: Observer) -> None:
        """Wire the fleet into a shared observer.

        Registers the cluster dispatch counters and forwards to every
        node (QoS, CoCG scheduler, distributor).  The plain-int
        ``dispatched``/``deferred`` attributes stay authoritative; the
        registry mirrors them so ``metrics.prom`` tells the same story.
        """
        self.obs = obs
        dispatch = obs.counter(
            CLUSTER_DISPATCH,
            "Fleet dispatch attempts by outcome.",
            ("outcome",),
        )
        self._c_dispatched = dispatch.labels(outcome="dispatched")
        self._c_deferred = dispatch.labels(outcome="deferred")
        self._c_pump_rounds = obs.counter(
            CLUSTER_PUMP_ROUNDS,
            "Retry-queue pump rounds (the non-gateway path).",
        )
        for node in self.nodes:
            node.attach_observer(obs)

    def attach_trace(self, trace: "TraceRecorder") -> None:
        """Wire the fleet into a trace recorder (the ``trace=`` handle).

        Forwards to every node (session stage timelines) and, when a
        gateway is already attached without its own recorder, to the
        gateway (admission verdicts).  Nodes added later inherit the
        recorder through :meth:`add_node`.
        """
        self.trace = trace
        for node in self.nodes:
            node.attach_trace(trace)
        if self.gateway is not None and self.gateway.trace is None:
            self.gateway.trace = trace

    def note_dispatch(self, outcome: str, *, time: float) -> None:
        """Count one dispatch attempt (``dispatched`` or ``deferred``).

        The single accounting point for both dispatch paths — direct
        :meth:`dispatch` and the serve-layer micro-batcher — so the ints
        and the registry can never drift apart.
        """
        if outcome == "dispatched":
            self.dispatched += 1
            child = self._c_dispatched
        else:
            self.deferred += 1
            child = self._c_deferred
        if child is not None:
            child.inc(time=time)

    def attach_gateway(self, gateway: "AdmissionGateway") -> None:
        """Front this cluster with a serve-layer admission gateway.

        Once attached, :meth:`submit` and :meth:`pump` route through the
        gateway: requests land in its per-category bounded queues under
        token-bucket rate limiting, and overload is *shed* (an explicit
        outcome in gateway telemetry) instead of silently dead-lettered
        by the retry queue.  Detach by setting :attr:`gateway` to None.
        """
        self.gateway = gateway
        if self.trace is not None and gateway.trace is None:
            gateway.trace = self.trace

    def add_node(self, node: FleetNode) -> None:
        """Grow the fleet by one node (a provisioned/warm standby).

        The node joins in whatever lifecycle state it carries — a
        ``warming`` standby is a non-candidate until promoted.  Does not
        move :attr:`capacity_target`; elasticity is about *reaching* the
        target, not inflating it.
        """
        if any(n.node_id == node.node_id for n in self.nodes):
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self.nodes.append(node)
        if self.obs is not None:
            node.attach_observer(self.obs)
        if self.trace is not None:
            node.attach_trace(self.trace)

    def node(self, node_id: str) -> FleetNode:
        """Look a node up by id.

        The error message lists every known node *with its lifecycle
        state* — sorted by id, and including the provisioner's in-flight
        request-phase entries (``requested``/``provisioning``), which
        precede the node object itself — so a miss during an elastic run
        shows at a glance whether the node was reclaimed, still booting,
        or never existed.
        """
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        states = {n.node_id: n.health.value for n in self.nodes}
        if self.provisioner is not None:
            for nid, state in self.provisioner.pending_states().items():
                states.setdefault(nid, state)
        known = ", ".join(
            f"{nid}={state}" for nid, state in sorted(states.items())
        )
        raise KeyError(f"no node {node_id!r}; known nodes: {{{known}}}")

    @shard_entry("region:fleet")
    def dispatch(
        self,
        request: GameRequest,
        *,
        time: float,
        seed: int,
        incarnation: int = 0,
    ) -> Optional[FleetNode]:
        """Place one request; returns the hosting node or ``None``.

        A ``None`` means every *healthy* node's admission test rejected
        the game right now — the request should be retried later.
        """
        order = self.candidate_order(request)
        for node in order:
            if node.try_admit(
                request, time=time, seed=seed, incarnation=incarnation
            ):
                self.note_dispatch("dispatched", time=time)
                return node
        self.note_dispatch("deferred", time=time)
        return None

    def candidate_order(self, request: GameRequest) -> List[FleetNode]:
        """Nodes to try for one request, via :func:`dispatch_order`.

        Round-robin advances the rotation cursor per call, so asking for
        an order *is* taking a dispatch turn (exactly what
        :meth:`dispatch` and the serve-layer batcher both do).
        """
        offset = self._rr
        if self.policy == "round-robin":
            self._rr += 1
        return dispatch_order(self.nodes, self.policy, rr_offset=offset)

    # ------------------------------------------------------------------
    # The retry queue
    # ------------------------------------------------------------------
    def backoff(self, attempts: int) -> float:
        """Retry delay after ``attempts`` failed dispatch rounds."""
        if attempts < 1:
            return 0.0
        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** (attempts - 1),
        )

    @shard_entry("region:fleet")
    def submit(
        self,
        request: GameRequest,
        *,
        time: float,
        incarnation: int = 0,
        fault_index: Optional[int] = None,
    ) -> bool:
        """Queue a request for dispatch; False = dead-lettered/shed.

        With a gateway attached the request goes through admission
        control instead: it is queued per category (True) or shed
        (False) according to the gateway's bounds.  ``fault_index``
        (retry-queue path) attributes any later dead letter to the
        fault that displaced the request.
        """
        if self.gateway is not None:
            outcome: "AdmissionOutcome" = self.gateway.offer(
                request, time=time, incarnation=incarnation
            )
            return outcome.accepted
        if len(self._queue) >= self.queue_limit:
            self.dead_letters.append(
                DeadLetter(
                    request, float(time), 0, "queue overflow",
                    fault_index=fault_index,
                )
            )
            return False
        self._queue.append(
            PendingRequest(
                request, incarnation=incarnation, next_try=float(time),
                fault_index=fault_index,
            )
        )
        return True

    @shard_entry("region:fleet")
    def pump(self, time: float, seed_for) -> List[GameRequest]:
        """One dispatch round over the due part of the retry queue.

        ``seed_for(request, incarnation)`` supplies the session seed.
        Returns the requests that started; the rest back off
        exponentially until ``max_retries``, then dead-letter.

        With a gateway attached the round is the gateway's instead:
        micro-batched dispatch over its rate-limited queues.
        """
        if self.gateway is not None:
            return self.gateway.pump(time, seed_for)
        if self.obs is not None:
            self.obs.tick(time)
            self._c_pump_rounds.inc(time=time)
            with self.obs.span("cluster.pump", time, stream=STREAM_CLUSTER) as s:
                started = self._pump_retry_queue(time, seed_for)
                s.args["started"] = len(started)
            return started
        return self._pump_retry_queue(time, seed_for)

    def _pump_retry_queue(self, time: float, seed_for) -> List[GameRequest]:
        started: List[GameRequest] = []
        remaining: List[PendingRequest] = []
        for entry in self._queue:
            if entry.next_try > time + 1e-9:
                remaining.append(entry)
                continue
            node = self.dispatch(
                entry.request,
                time=time,
                seed=seed_for(entry.request, entry.incarnation),
                incarnation=entry.incarnation,
            )
            if node is not None:
                started.append(entry.request)
                continue
            entry.attempts += 1
            if entry.attempts > self.max_retries:
                self.dead_letters.append(
                    DeadLetter(
                        entry.request, float(time), entry.attempts,
                        "retries exhausted", fault_index=entry.fault_index,
                    )
                )
            else:
                entry.next_try = time + self.backoff(entry.attempts)
                remaining.append(entry)
        self._queue = remaining
        return started

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting (retry queue, or gateway queues)."""
        if self.gateway is not None:
            return self.gateway.depth + len(self._queue)
        return len(self._queue)

    # ------------------------------------------------------------------
    # Fault surface
    # ------------------------------------------------------------------
    def _is_pending(self, request_id: int) -> bool:
        """Whether a request already waits in the retry queue/gateway."""
        if any(e.request.request_id == request_id for e in self._queue):
            return True
        return self.gateway is not None and self.gateway.has_pending(
            request_id
        )

    def _requeue(
        self,
        request: GameRequest,
        time: float,
        *,
        fault_index: Optional[int] = None,
    ) -> None:
        rid = request.request_id
        if self._is_pending(rid):
            # A drain/reclaim kill racing an active retry backoff must
            # not enqueue the same request twice; the averted duplicate
            # stays visible in the accounting.
            self.requeue_dupes += 1
            return
        self._incarnations[rid] = self._incarnations.get(rid, 0) + 1
        self.requeues += 1
        self.submit(
            request,
            time=time,
            incarnation=self._incarnations[rid],
            fault_index=fault_index,
        )

    def crash_node(
        self,
        node_id: str,
        time: float,
        *,
        requeue: bool = True,
        fault_index: Optional[int] = None,
    ) -> List[str]:
        """Kill a node; returns the displaced session ids.

        Displaced requests re-enter the retry queue (``requeue=True``)
        or vanish (players abandon — counted in :attr:`abandoned`).
        """
        node = self.node(node_id)
        if node.health is NodeHealth.DOWN:
            return []
        killed = node.crash(time)
        self.evictions += len(killed)
        if requeue:
            for _sid, request in killed:
                self._requeue(request, time, fault_index=fault_index)
        else:
            self.abandoned += len(killed)
        return [sid for sid, _ in killed]

    def recover_node(self, node_id: str, time: float) -> None:
        """Bring a node back into dispatch rotation."""
        self.node(node_id).recover(time)

    def drain_node(self, node_id: str, time: float) -> None:
        """Take a node out of dispatch rotation, keeping its sessions."""
        self.node(node_id).drain(time)

    def begin_reclaim(
        self,
        node_id: str,
        time: float,
        *,
        notice: float,
        fault_index: Optional[int] = None,
    ) -> bool:
        """Serve a spot-reclamation notice on a node.

        The node enters ``reclaim-notice``: it leaves dispatch rotation
        immediately but keeps running its sessions for the ``notice``
        window (sessions that finish in time simply complete).  Returns
        False when the node is already down/warming (nothing to
        reclaim).  :meth:`finish_reclaim` takes the capacity away.
        """
        node = self.node(node_id)
        if node.health in (NodeHealth.DOWN, NodeHealth.WARMING):
            return False
        node.reclaim_notice(time, notice=notice)
        if self.obs is not None:
            self.obs.record_span(
                lifecycle_span(node_id), time, time + notice,
                stream=STREAM_CLUSTER, state="reclaim-notice",
                fault_index=-1 if fault_index is None else fault_index,
            )
        return True

    def finish_reclaim(
        self,
        node_id: str,
        time: float,
        *,
        requeue: bool = True,
        fault_index: Optional[int] = None,
    ) -> List[str]:
        """Take a reclaimed node's capacity away (notice expired).

        Sessions still alive are *never silently lost*: each displaced
        request re-enters the bounded retry path (``requeue=True``) or
        is dead-lettered with the explicit reason ``"reclaim"`` —
        unlike a crash, a reclamation is an accountable platform
        decision, so an abandon outcome does not exist here.
        """
        node = self.node(node_id)
        if node.health is NodeHealth.DOWN:
            return []
        node.health = NodeHealth.DOWN  # no re-admission during the kill
        killed = node.kill_matching(time)
        node.transition(
            NodeHealth.DOWN, time, "node-reclaimed",
            f"{node.node_id}: {len(killed)} sessions displaced",
        )
        self.evictions += len(killed)
        self.reclaimed_nodes += 1
        for _sid, request in killed:
            if requeue:
                self._requeue(request, time, fault_index=fault_index)
            else:
                self.dead_letters.append(DeadLetter(
                    request, float(time), 0, "reclaim",
                    fault_index=fault_index,
                ))
        return [sid for sid, _ in killed]

    def kill_session(
        self,
        time: float,
        *,
        node: str = "*",
        session: str = "*",
        requeue: bool = True,
        fault_index: Optional[int] = None,
    ) -> Optional[str]:
        """Kill the first matching session fleet-wide (crash/abandon)."""
        for fleet_node in self.nodes:
            if node != "*" and fleet_node.node_id != node:
                continue
            killed = fleet_node.kill_matching(time, session=session, limit=1)
            if killed:
                sid, request = killed[0]
                self.evictions += 1
                if requeue:
                    self._requeue(request, time, fault_index=fault_index)
                else:
                    self.abandoned += 1
                return sid
        return None

    # ------------------------------------------------------------------
    def tick(self, t: int) -> None:
        """Advance every live node one second."""
        if self.obs is not None:
            self.obs.tick(t)
        for node in self.nodes:
            if node.health is not NodeHealth.DOWN:
                node.tick(t)

    def control(self, t: float) -> None:
        """Run every live node's control loop."""
        for node in self.nodes:
            if node.health is not NodeHealth.DOWN:
                node.control(t)

    @property
    def total_running(self) -> int:
        """Sessions currently hosted across the fleet."""
        return sum(node.n_running for node in self.nodes)

    @property
    def up_count(self) -> int:
        """Nodes currently in dispatch rotation (``up``)."""
        return sum(1 for n in self.nodes if n.health is NodeHealth.UP)

    @property
    def warm_count(self) -> int:
        """Pre-booted standbys (``warming``) waiting for promotion."""
        return sum(1 for n in self.nodes if n.health is NodeHealth.WARMING)

    def usable_fraction(self) -> float:
        """Live UP capacity relative to :attr:`capacity_target`.

        The gateway's backpressure coupling sheds earlier while this is
        below its configured floor and relaxes as soon as warm nodes
        land (promotion raises the UP count back toward the target).
        """
        if self.capacity_target <= 0:
            return 1.0
        return self.up_count / self.capacity_target

    def session_accounting(self) -> Dict[str, int]:
        """The robustness ledger: where every admitted session went.

        Two identities must hold at any quiescent point (and are
        asserted by tests/CI under reclamation storms):

        * ``dispatched == completed + running + evicted`` — every
          admission is either done, still hosted, or displaced;
        * ``evicted == requeued + abandoned + reclaim_dead_letters +
          requeue_dupes`` — every displacement is accounted for.
        """
        return {
            "dispatched": self.dispatched,
            "completed": sum(self.completed_runs().values()),
            "running": self.total_running,
            "evicted": self.evictions,
            "requeued": self.requeues,
            "abandoned": self.abandoned,
            "reclaim_dead_letters": sum(
                1 for d in self.dead_letters if d.reason == "reclaim"
            ),
            "requeue_dupes": self.requeue_dupes,
        }

    def unaccounted_sessions(self) -> int:
        """How far the :meth:`session_accounting` ledger is off (0 = sound)."""
        a = self.session_accounting()
        placement = a["dispatched"] - (
            a["completed"] + a["running"] + a["evicted"]
        )
        displacement = a["evicted"] - (
            a["requeued"] + a["abandoned"] + a["reclaim_dead_letters"]
            + a["requeue_dupes"]
        )
        return abs(placement) + abs(displacement)

    def completed_runs(self) -> Dict[str, int]:
        """Fleet-wide completed runs per game."""
        out: Dict[str, int] = {}
        for node in self.nodes:
            for game, n in sorted(node.completed.items()):
                out[game] = out.get(game, 0) + n
        return out
