"""Fleet nodes and the cluster-level dispatcher.

A :class:`FleetNode` bundles everything one backend server needs: the
server model, its capped allocator, a scheduling strategy (CoCG or any
baseline), telemetry, and QoS tracking.  Nodes may sit on different
platforms — the §IV-D migration rule rescales each game profile once per
platform, keeping the trained predictors.

:class:`ClusterScheduler` is the front door: it receives launch requests
and routes each to a node.  Placement is final (cloud games cannot be
migrated, §I), so the dispatch policy is the only fleet-level decision:

* ``first-fit`` — first node whose admission test passes (fast, the
  OnLive-style policy the related work describes);
* ``best-fit`` — among admitting nodes, the one with the *least*
  headroom after placement (bin-packing pressure, consolidates load);
* ``round-robin`` — rotate the starting node (load spreading).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


from repro.baselines.base import SchedulingStrategy
from repro.core.pipeline import GameProfile
from repro.games.session import GameSession
from repro.platform_.allocator import Allocator
from repro.platform_.profile import PlatformProfile, REFERENCE_PLATFORM
from repro.platform_.qos import QoSTracker
from repro.platform_.server import GPUDevice, Server
from repro.sim.telemetry import TelemetryRecorder
from repro.util.rng import Seed, derive_seed
from repro.util.validation import check_in
from repro.workloads.requests import GameRequest

__all__ = ["FleetNode", "ClusterScheduler"]


class FleetNode:
    """One backend server and its local control plane.

    Parameters
    ----------
    node_id:
        Unique node name.
    strategy:
        The node's scheduling strategy (each node owns its own instance).
    profiles:
        Reference-platform game profiles; rescaled to this node's
        platform automatically (§IV-D).
    platform:
        The node's hardware class.
    server:
        Optional explicit server model; default one-GPU node.
    utilization_cap:
        Allocator budget fraction.
    seed:
        Telemetry-noise seed.
    """

    def __init__(
        self,
        node_id: str,
        strategy: SchedulingStrategy,
        profiles: Dict[str, GameProfile],
        *,
        platform: PlatformProfile = REFERENCE_PLATFORM,
        server: Optional[Server] = None,
        utilization_cap: float = 0.95,
        seed: Seed = 0,
    ):
        self.node_id = str(node_id)
        self.platform = platform
        self.server = (
            server if server is not None else Server(node_id, gpus=[GPUDevice()])
        )
        self.allocator = Allocator(self.server, utilization_cap=utilization_cap)
        if platform is not REFERENCE_PLATFORM:
            profiles = {
                name: profile.rescaled(platform)
                for name, profile in profiles.items()
            }
        self.profiles = profiles
        self.strategy = strategy
        self.strategy.attach(self.allocator, profiles)
        self.telemetry = TelemetryRecorder(seed=derive_seed(seed, "tel", node_id))
        self.qos = QoSTracker()
        self.sessions: Dict[str, GameSession] = {}
        self.completed: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def try_admit(self, request: GameRequest, *, time: float, seed: int) -> bool:
        """Instantiate the request's session *on this node's platform*
        and offer it to the local strategy."""
        session = GameSession(
            request.spec,
            request.script,
            player=request.player,
            seed=seed,
            platform=self.platform,
            session_id=f"{request.spec.name}-r{request.request_id}@{self.node_id}",
        )
        if self.strategy.try_admit(session, time=time):
            self.sessions[session.session_id] = session
            return True
        return False

    def tick(self, t: int) -> None:
        """Advance every hosted session one second."""
        for sid in list(self.sessions):
            session = self.sessions[sid]
            allocation = self.strategy.allocation_of(sid)
            tick = session.advance(allocation)
            self.telemetry.record(t, sid, tick.demand, allocation)
            self.qos.record_second(
                sid,
                tick.nominal_fps,
                tick.demand,
                allocation,
                frame_lock=tick.frame_lock,
            )
            if tick.finished:
                self.strategy.release(sid, time=t)
                self.completed[session.spec.name] = (
                    self.completed.get(session.spec.name, 0) + 1
                )
                del self.sessions[sid]

    def control(self, t: float) -> None:
        """Run the node's periodic control loop."""
        self.strategy.control(t, self.telemetry)

    # ------------------------------------------------------------------
    def headroom(self) -> float:
        """Relative slack of the tightest dimension (0 = full)."""
        return self.server.headroom_fraction()

    @property
    def n_running(self) -> int:
        """Sessions currently hosted on this node."""
        return len(self.sessions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FleetNode({self.node_id!r}, platform={self.platform.name!r}, "
            f"running={self.n_running})"
        )


class ClusterScheduler:
    """The Fig-1 cloud-game scheduler: routes requests across nodes.

    Parameters
    ----------
    nodes:
        The fleet.
    policy:
        ``"first-fit"``, ``"best-fit"`` or ``"round-robin"``.
    """

    POLICIES = ("first-fit", "best-fit", "round-robin")

    def __init__(self, nodes: Sequence[FleetNode], *, policy: str = "first-fit"):
        if not nodes:
            raise ValueError("a cluster needs at least one node")
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate node ids: {ids}")
        check_in("policy", policy, self.POLICIES)
        self.nodes: List[FleetNode] = list(nodes)
        self.policy = policy
        self._rr = 0
        self.dispatched = 0
        self.deferred = 0

    # ------------------------------------------------------------------
    def dispatch(self, request: GameRequest, *, time: float, seed: int) -> Optional[FleetNode]:
        """Place one request; returns the hosting node or ``None``.

        A ``None`` means every node's admission test rejected the game
        right now — the request should be retried later (requests queue;
        they are never dropped).
        """
        order = self._candidate_order(request)
        for node in order:
            if node.try_admit(request, time=time, seed=seed):
                self.dispatched += 1
                return node
        self.deferred += 1
        return None

    def _candidate_order(self, request: GameRequest) -> List[FleetNode]:
        if self.policy == "round-robin":
            k = self._rr % len(self.nodes)
            self._rr += 1
            return self.nodes[k:] + self.nodes[:k]
        if self.policy == "best-fit":
            # Try the fullest nodes first: consolidates games so empty
            # nodes stay empty (bin-packing pressure).
            return sorted(self.nodes, key=lambda n: n.headroom())
        return list(self.nodes)  # first-fit

    # ------------------------------------------------------------------
    def tick(self, t: int) -> None:
        """Advance every node one second."""
        for node in self.nodes:
            node.tick(t)

    def control(self, t: float) -> None:
        """Run every node's control loop."""
        for node in self.nodes:
            node.control(t)

    @property
    def total_running(self) -> int:
        """Sessions currently hosted across the fleet."""
        return sum(node.n_running for node in self.nodes)

    def completed_runs(self) -> Dict[str, int]:
        """Fleet-wide completed runs per game."""
        out: Dict[str, int] = {}
        for node in self.nodes:
            for game, n in node.completed.items():
                out[game] = out.get(game, 0) + n
        return out
