#!/usr/bin/env python3
"""Quickstart: profile two games, co-locate them under CoCG, read results.

This is the 60-second tour of the library's public API:

1. build the five-game catalog (the paper's Table-I workloads);
2. run the offline pipeline (trace corpus → frame clustering → stage
   library → trained stage predictors) for two games;
3. run a half-hour co-location experiment under the CoCG scheduler;
4. print throughput (Eq 2), per-game QoS, and the scheduler's actions.

Run:  python examples/quickstart.py
"""

from repro import (
    CoCGStrategy,
    ColocationExperiment,
    GameProfile,
    build_catalog,
)

HORIZON = 1800  # half an hour of simulated play
SEED = 7


def main() -> None:
    catalog = build_catalog()
    print("Catalog:", ", ".join(sorted(catalog)))

    # ---- offline: profile each game once --------------------------------
    print("\nProfiling genshin and contra (clustering + predictor training)…")
    profiles = {}
    for name in ("genshin", "contra"):
        profile = GameProfile.build(
            catalog[name], n_players=4, sessions_per_player=4, seed=SEED
        )
        profiles[name] = profile
        print(f"\n{profile.library.summary()}")
        for backend, predictor in profile.predictors.items():
            print(f"  {backend} next-stage accuracy: {predictor.accuracy_:.1%}")

    # ---- online: co-locate under CoCG ------------------------------------
    print(f"\nRunning {HORIZON}s of co-location under CoCG…")
    strategy = CoCGStrategy()
    result = ColocationExperiment(
        profiles, strategy, horizon=HORIZON, seed=SEED
    ).run()

    print(f"\nThroughput (Eq 2):    {result.throughput:,.0f} game-seconds")
    print(f"Completed runs:       {result.completed_runs}")
    print(f"Co-located seconds:   {result.colocated_seconds} / {HORIZON}")
    print(f"Peak combined usage:  {result.peak_total_usage.round(1)} (cap 95)")
    print(f"Seconds over cap:     {result.over_cap_seconds}")
    for game in profiles:
        fob = result.fraction_of_best[game]
        vio = result.violation_fraction[game]
        print(
            f"  {game:8} FPS at {fob:.0%} of best, "
            f"below 30 FPS {vio:.1%} of the time"
        )
    scheduler = strategy.scheduler
    print(
        f"Scheduler actions:    {scheduler.admissions} admissions, "
        f"{scheduler.rejections} rejections, "
        f"{scheduler.regulator.holds_started} loading holds "
        f"({scheduler.regulator.hold_seconds_total:.0f}s stolen)"
    )


if __name__ == "__main__":
    main()
