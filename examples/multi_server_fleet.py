#!/usr/bin/env python3
"""A small cloud-gaming fleet: Poisson arrivals over several servers.

The paper's evaluation co-locates pairs on one backend server; this
example scales the same machinery out: an open-loop Poisson request
stream over the full five-game catalog is dispatched to a fleet of
CoCG-scheduled servers (first server whose Algorithm-1 distributor
admits the game wins), using the discrete-event engine for arrivals.

Prints fleet utilisation, per-server placements, admission deferrals and
QoS — a taste of the §IV-D "larger servers, more games" discussion.

Run:  python examples/multi_server_fleet.py
"""

import numpy as np

from repro import CoCGStrategy, GameProfile, build_catalog
from repro.analysis.report import format_table
from repro.platform_.allocator import Allocator
from repro.platform_.qos import QoSTracker
from repro.platform_.server import GPUDevice, Server
from repro.sim.engine import SimulationEngine
from repro.sim.telemetry import TelemetryRecorder
from repro.workloads.requests import PoissonArrivals

N_SERVERS = 3
HORIZON = 2400
SEED = 5


def main() -> None:
    catalog = build_catalog()
    print("Profiling the five-game catalog…")
    profiles = {
        name: GameProfile.build(
            spec, n_players=4, sessions_per_player=3, seed=SEED
        )
        for name, spec in catalog.items()
    }

    fleet = []
    for i in range(N_SERVERS):
        server = Server(f"server-{i}", gpus=[GPUDevice(name="gpu0")])
        strategy = CoCGStrategy()
        strategy.attach(Allocator(server), profiles)
        fleet.append(
            {
                "server": server,
                "strategy": strategy,
                "telemetry": TelemetryRecorder(seed=SEED + i),
                "qos": QoSTracker(),
                "sessions": {},
                "completed": 0,
            }
        )

    arrivals = PoissonArrivals(
        list(catalog.values()), rate_per_minute=1.2, seed=SEED, horizon=HORIZON
    )
    print(f"{len(arrivals.requests)} requests over {HORIZON}s across "
          f"{N_SERVERS} servers")
    waiting = []
    deferred_total = 0

    engine = SimulationEngine()

    def tick(engine: SimulationEngine) -> None:
        nonlocal deferred_total
        t = int(engine.now)
        waiting.extend(arrivals.due(t - 1, t))
        # Dispatch: first server that admits.
        still_waiting = []
        for request in waiting:
            session = request.make_session(seed=request.request_id)
            for node in fleet:
                if node["strategy"].try_admit(session, time=t):
                    node["sessions"][session.session_id] = session
                    break
            else:
                deferred_total += 1
                still_waiting.append(request)
        waiting[:] = still_waiting
        # Advance every hosted session.
        for node in fleet:
            for sid in list(node["sessions"]):
                session = node["sessions"][sid]
                alloc = node["strategy"].allocation_of(sid)
                tick_ = session.advance(alloc)
                node["telemetry"].record(t, sid, tick_.demand, alloc)
                node["qos"].record_second(
                    sid, tick_.nominal_fps, tick_.demand, alloc,
                    frame_lock=tick_.frame_lock,
                )
                if tick_.finished:
                    node["strategy"].release(sid, time=t)
                    node["completed"] += 1
                    del node["sessions"][sid]
        if t % 5 == 0:
            for node in fleet:
                node["strategy"].control(t, node["telemetry"])

    engine.every(1.0, tick)
    engine.run_until(HORIZON)

    rows = []
    for node in fleet:
        total = node["telemetry"].total_usage_matrix(HORIZON)
        qos = node["qos"]
        fob = (
            qos.overall_fraction_of_best() if qos.session_ids else float("nan")
        )
        rows.append([
            node["server"].server_id,
            node["completed"],
            len(node["sessions"]),
            float(total[:, 1].mean()),
            float(total[:, 1].max()),
            fob * 100 if not np.isnan(fob) else float("nan"),
        ])
    print("\n" + format_table(
        ["server", "completed", "still running", "mean GPU %", "peak GPU %",
         "% of best FPS"],
        rows,
        title="Fleet after the run",
    ))
    print(f"\nDeferred admission attempts: {deferred_total} "
          f"(requests retry each second until a server accepts)")
    print(f"Requests never served: {len(waiting)}")


if __name__ == "__main__":
    main()
