#!/usr/bin/env python3
"""Compare all five scheduling strategies on a hard co-location pair.

Reproduces the Fig-11 experiment interactively on DOTA2 + Devil May Cry
— the pair whose peak sum exceeds any static reservation — and prints
the Eq-2 throughput, run counts, QoS and admission behaviour of:

* CoCG (the paper's system),
* Reactive (the paper's "improved version": stage-aware, no prediction),
* GAugur (fixed ML-profiled limits),
* VBP (vector bin packing at 0.9×peak),
* MaxStatic (whole-run peak reservation).

Run:  python examples/compare_strategies.py [horizon_seconds]
"""

import sys

import numpy as np

from repro import (
    CoCGStrategy,
    ColocationExperiment,
    GameProfile,
    GAugurStrategy,
    MaxStaticStrategy,
    ReactiveStrategy,
    VBPStrategy,
    build_catalog,
)
from repro.analysis.report import format_table

PAIR = ("dota2", "devil_may_cry")
SEED = 42
# Corpus settings matching the benchmark harness: admission on this pair
# sits near the budget boundary, so the profile statistics matter.
PROFILE_PLAYERS = 6
PROFILE_SESSIONS = 5
PROFILE_SEED = 3


def main() -> None:
    horizon = int(sys.argv[1]) if len(sys.argv) > 1 else 5400
    catalog = build_catalog()
    print(f"Profiling {PAIR[0]} and {PAIR[1]}…")
    profiles = {
        name: GameProfile.build(
            catalog[name],
            n_players=PROFILE_PLAYERS,
            sessions_per_player=PROFILE_SESSIONS,
            seed=PROFILE_SEED,
        )
        for name in PAIR
    }
    peaks = {n: p.library.max_peak().gpu for n, p in profiles.items()}
    print(
        f"Peak GPU demand: {PAIR[0]} {peaks[PAIR[0]]:.0f} % + "
        f"{PAIR[1]} {peaks[PAIR[1]]:.0f} % = "
        f"{sum(peaks.values()):.0f} % — no static reservation can host both."
    )

    rows = []
    for strategy in (
        CoCGStrategy(),
        ReactiveStrategy(),
        GAugurStrategy(),
        VBPStrategy(),
        MaxStaticStrategy(),
    ):
        result = ColocationExperiment(
            profiles, strategy, horizon=horizon, seed=SEED
        ).run()
        fob = np.nanmean(list(result.fraction_of_best.values()))
        rows.append([
            result.strategy,
            result.throughput,
            result.completed_runs[PAIR[0]],
            result.completed_runs[PAIR[1]],
            result.colocated_seconds,
            fob * 100,
            result.rejections,
        ])
        print(f"  {result.strategy}: done")

    rows.sort(key=lambda r: -r[1])
    print("\n" + format_table(
        ["strategy", "T (Eq 2)", f"runs {PAIR[0]}", f"runs {PAIR[1]}",
         "coloc s", "% of best FPS", "rejections"],
        rows,
        title=f"{horizon}s co-location of {PAIR[0]} + {PAIR[1]}",
    ))
    best, second = rows[0], rows[1]
    print(
        f"\n{best[0]} delivers {best[1] / second[1] - 1:+.1%} throughput over "
        f"{second[0]} (paper Fig 11: CoCG +23.7 % overall)."
    )


if __name__ == "__main__":
    main()
