#!/usr/bin/env python3
"""Deep-dive into the frame-grained profiler on one game.

Walks the §IV-A pipeline step by step on Devil May Cry — the paper's most
stage-rich title — showing each intermediate artifact:

* the raw 5-second frames of a playthrough;
* the SSE-vs-K elbow sweep (Fig 14) and the chosen K;
* the fitted clusters and which one is "loading" (Observation 3);
* the stage segmentation of a fresh trace vs its ground truth;
* the stage library: types, durations, peaks, transition structure.

Run:  python examples/profile_a_game.py
"""

import numpy as np

from repro import build_catalog, generate_corpus, generate_trace
from repro.analysis.elbow import elbow_analysis
from repro.analysis.report import format_series, format_table
from repro.core.frames import frame_matrix
from repro.core.profiler import FrameGrainedProfiler, ProfilerConfig

GAME = "devil_may_cry"
SEED = 11


def main() -> None:
    catalog = build_catalog()
    spec = catalog[GAME]
    print(f"Game: {spec.name} ({spec.category.value}), "
          f"{len(spec.clusters)} authored clusters, "
          f"{len(spec.scripts)} scripts")

    # 1. Collect a profiling corpus (the paper's repeated lab runs).
    corpus = generate_corpus(spec, n_players=4, sessions_per_player=3, seed=SEED)
    X = frame_matrix([b.series for b in corpus])
    print(f"\nCorpus: {len(corpus)} playthroughs → {len(X)} five-second frames")

    # 2. The Fig-14 elbow sweep.
    analysis = elbow_analysis(spec, corpus, seed=0)
    print("\n" + format_series(
        "SSE/SSE(1) for K=1..10", analysis.normalized_sses, per_line=10,
        fmt="{:7.3f}",
    ))
    print(f"elbow K = {analysis.chosen_k} (paper's choice: {analysis.published_k})")

    # 3. Fit the profiler at the chosen K.
    profiler = FrameGrainedProfiler(
        GAME, config=ProfilerConfig(n_clusters=analysis.published_k)
    )
    library = profiler.fit(corpus)
    rows = [
        [i, *np.round(c, 1),
         "loading" if i in library.loading_clusters else ""]
        for i, c in enumerate(library.centers)
    ]
    print("\n" + format_table(
        ["cluster", "cpu", "gpu", "gpu_mem", "ram", "role"], rows,
        title="Fitted clusters (Observation 3 marks the loading one)",
    ))

    # 4. Segment a fresh playthrough and compare with ground truth.
    bundle = generate_trace(spec, "level-3", seed=99)
    segments = profiler.segment(bundle.frames().values)
    truth = bundle.truth.stage_boundaries()
    print(f"\nFresh level-3 trace: {len(bundle.series)}s, "
          f"{len(truth)} true stages, {len(segments)} profiled segments")
    seg_rows = [
        [repr(s.type_id), "loading" if s.is_loading else "execution",
         s.start_frame * 5, s.end_frame * 5, *np.round(s.peak[:2], 1)]
        for s in segments
    ]
    print(format_table(
        ["type", "kind", "start s", "end s", "peak cpu", "peak gpu"],
        seg_rows, title="Profiled segmentation",
    ))
    print(format_table(
        ["stage", "start s", "end s"],
        [[name, s, e] for name, s, e in truth],
        title="Ground truth (hidden from the profiler)",
    ))

    # 5. The stage library and its transition structure.
    print("\n" + library.summary())
    print("\nTransitions between execution types:")
    for t in library.execution_types:
        counts = library.transition_counts(t)
        if counts:
            succ = ", ".join(f"{k!r}×{v}" for k, v in counts.most_common())
            print(f"  {t!r} → {succ}")


if __name__ == "__main__":
    main()
