#!/usr/bin/env python3
"""Chaos engineering on a CoCG fleet: faults in, QoS delta out.

Runs the same two-node fleet experiment twice from identical seeds —
once fault-free, once under a :class:`repro.faults.FaultPlan` that
crashes a node mid-run (sessions requeue through the cluster's bounded
backoff queue), drops 1 % of telemetry samples, and breaks the stage
predictor's backend for a stretch (the circuit breaker degrades those
sessions to reactive allocation) — then prints the QoS/violation delta.

With ``--check-determinism`` the faulted run executes twice and the
script exits non-zero unless both runs produce byte-identical telemetry
digests — the replay guarantee ``docs/FAULTS.md`` documents and the CI
chaos job enforces.

Run:  python examples/chaos_fleet.py [--check-determinism]
"""

import argparse
import sys

from repro import CoCGStrategy, GameProfile, build_catalog
from repro.cluster import ClusterScheduler, FleetExperiment, FleetNode
from repro.faults import FaultPlan, run_chaos

HORIZON = 900
SEED = 7
RATE = 2.0
GAMES = ("contra", "dota2")


def make_plan() -> FaultPlan:
    """One node crash with recovery, background dropout, model outage."""
    return (
        FaultPlan(seed=SEED)
        .node_crash(HORIZON / 3, "node-1", recover_after=HORIZON / 6)
        .telemetry_dropout(0.0, duration=float(HORIZON), rate=0.01)
        .predictor_failure(HORIZON / 4, recover_after=HORIZON / 4)
    )


def build_profiles() -> dict:
    catalog = build_catalog()
    print(f"Profiling {', '.join(GAMES)}…")
    return {
        name: GameProfile.build(
            catalog[name], n_players=4, sessions_per_player=3, seed=SEED
        )
        for name in GAMES
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="run the faulted experiment twice and require identical "
             "telemetry digests (exit 1 otherwise)",
    )
    args = parser.parse_args()

    catalog = build_catalog()
    profiles = build_profiles()
    specs = [catalog[name] for name in GAMES]

    def make_cluster() -> ClusterScheduler:
        nodes = [
            FleetNode(f"node-{i}", CoCGStrategy(), profiles, seed=SEED + i)
            for i in range(2)
        ]
        return ClusterScheduler(nodes, policy="round-robin")

    if args.check_determinism:
        digests = []
        for attempt in (1, 2):
            result = FleetExperiment(
                make_cluster(), specs,
                horizon=HORIZON, rate_per_minute=RATE, seed=SEED,
                fault_plan=make_plan(),
            ).run()
            digests.append(result.telemetry_digest)
            print(f"faulted run {attempt}: digest {result.telemetry_digest}")
        if digests[0] != digests[1]:
            print("FAIL: telemetry digests differ between identical replays")
            return 1
        print("OK: fault replay is deterministic (digests identical)")
        return 0

    report = run_chaos(
        make_cluster, specs,
        plan=make_plan(), horizon=HORIZON, rate_per_minute=RATE, seed=SEED,
    )
    print()
    for line in report.summary_lines():
        print(line)
    if report.faulted.dead_letters:
        print("\ndead-lettered requests:")
        for dead in report.faulted.dead_letters:
            print(
                f"  {dead.request.spec.name} r{dead.request.request_id}: "
                f"{dead.reason} after {dead.attempts} attempts (t={dead.time:.0f}s)"
            )
    print(f"\ntelemetry digest (faulted): {report.faulted.telemetry_digest}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
