#!/usr/bin/env python3
"""End-to-end cloud-game streaming latency (the Fig-1 workflow).

Exercises the GamingAnywhere-style pipeline substrate on its own: for a
matrix of codecs, resolutions and client devices, stream one second of
play and decompose the glass-to-glass latency (capture → encode →
network → decode → display), plus the encoder CPU overhead the
co-location budget must carry per hosted session.

The paper quotes a < 3 ms network target for interaction-grade play;
this example shows where that budget sits inside the full pipeline.

Run:  python examples/streaming_latency.py
"""

from repro.analysis.report import format_table
from repro.streaming import ClientModel, EncoderModel, NetworkModel, StreamingPipeline


def main() -> None:
    network = NetworkModel(base_latency_ms=2.0, jitter_ms=0.2, seed=0)
    print(
        "Network meets the paper's <3 ms target at 30 Mbps offered load:",
        network.meets_paper_target(30.0),
    )

    rows = []
    for codec in ("h264", "h265", "av1"):
        for width, height, label in (
            (1280, 720, "720p"),
            (1920, 1080, "1080p"),
            (2560, 1440, "1440p"),
        ):
            for device in ("desktop", "phone"):
                pipeline = StreamingPipeline(
                    encoder=EncoderModel(codec=codec, width=width, height=height),
                    network=NetworkModel(jitter_ms=0.0, seed=0),
                    client=ClientModel(device=device),
                )
                breakdown, cpu = pipeline.stream_second(60)
                rows.append([
                    codec, label, device,
                    breakdown.encode_ms, breakdown.network_ms,
                    breakdown.decode_ms, breakdown.total_ms,
                    "yes" if breakdown.interaction_grade(50.0) else "NO",
                    cpu,
                ])
    print("\n" + format_table(
        ["codec", "res", "client", "encode ms", "net ms", "decode ms",
         "total ms", "<50ms", "enc CPU %"],
        rows,
        title="Glass-to-glass latency at 60 FPS (per-frame milliseconds)",
    ))

    # How the encode overhead scales with the FPS the scheduler sustains.
    enc = EncoderModel()
    fps_rows = [[fps, enc.cpu_overhead(fps)] for fps in (15, 30, 60, 120)]
    print("\n" + format_table(
        ["FPS", "encoder CPU %"],
        fps_rows,
        title="Encoder overhead charged per hosted session (1080p h264)",
    ))


if __name__ == "__main__":
    main()
