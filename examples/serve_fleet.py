#!/usr/bin/env python3
"""The serve layer in front of a CoCG fleet: bounded admission, batched
Algorithm-1 dispatch, per-category SLO report.

Runs Poisson arrivals over a three-node fleet fronted by an
:class:`repro.serve.AdmissionGateway`: requests queue per game category
under a token-bucket rate limit, overload is shed explicitly, dispatch
shares one Algorithm-1 evaluation pass per node per round
(micro-batching) and predictor rollouts are memoized in a
:class:`repro.serve.RolloutCache`.  The run then repeats with batching
and caching off; admission outcomes must be identical — the serve layer
changes the *cost* of admission, never its verdicts.

With ``--check-determinism`` the gateway run executes twice and the
script exits non-zero unless both produce byte-identical fleet digests
(gateway shed/queue verdicts are part of the digest) — the pattern the
CI ``serve-smoke`` job enforces.  The 100k-request decision-count stats
(``BENCH_serve.json``) come from ``benchmarks/test_serve_throughput.py``.

Run:  python examples/serve_fleet.py [--check-determinism]
"""

import argparse
import sys

from repro import CoCGStrategy, GameProfile, build_catalog
from repro.cluster import ClusterScheduler, FleetExperiment, FleetNode
from repro.serve import AdmissionGateway, GatewayConfig, RolloutCache

HORIZON = 900
SEED = 11
RATE = 6.0  # arrivals per minute — deliberately above fleet capacity
GAMES = ("contra", "dota2")
N_NODES = 3


def build_profiles() -> dict:
    catalog = build_catalog()
    print(f"Profiling {', '.join(GAMES)}…")
    return {
        name: GameProfile.build(
            catalog[name], n_players=4, sessions_per_player=3, seed=SEED
        )
        for name in GAMES
    }


def run_once(profiles: dict, specs: list, *, batched: bool):
    """One gateway-fronted fleet run; returns (result, gateway, cache)."""
    nodes = [
        FleetNode(f"node-{i}", CoCGStrategy(), profiles, seed=SEED + i)
        for i in range(N_NODES)
    ]
    cluster = ClusterScheduler(nodes, policy="round-robin")
    gateway = AdmissionGateway(
        cluster,
        config=GatewayConfig(
            queue_capacity=32,
            rate_per_second=3.0,
            burst=6,
            max_queue_seconds=240.0,
            micro_batching=batched,
        ),
    )
    cluster.attach_gateway(gateway)
    cache = RolloutCache()
    if batched:
        for node in nodes:
            node.strategy.scheduler.attach_rollout_cache(cache)
    result = FleetExperiment(
        cluster, specs, horizon=HORIZON, rate_per_minute=RATE, seed=SEED
    ).run()
    return result, gateway, cache


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="run the gateway experiment twice and require identical "
             "fleet digests (exit 1 otherwise); write BENCH_serve.json",
    )
    args = parser.parse_args()

    catalog = build_catalog()
    profiles = build_profiles()
    specs = [catalog[name] for name in GAMES]

    if args.check_determinism:
        digests = []
        for attempt in (1, 2):
            result, gateway, cache = run_once(profiles, specs, batched=True)
            digests.append(result.telemetry_digest)
            print(f"gateway run {attempt}: digest {result.telemetry_digest}")
        if digests[0] != digests[1]:
            print("FAIL: fleet digests differ between identical replays")
            return 1
        print("OK: gateway replay is deterministic (digests identical)")
        return 0

    result, gateway, cache = run_once(profiles, specs, batched=True)
    naive_result, naive_gateway, _ = run_once(profiles, specs, batched=False)

    stats = gateway.stats()
    print(f"\nfleet of {N_NODES} nodes behind the gateway")
    print(f"throughput (Eq 2):  {result.throughput:,.0f} game-seconds")
    print(f"completed runs:     {result.completed_runs}")
    print(f"gateway outcomes:   queued={stats['queued']} "
          f"admitted={stats['admitted']} shed={stats['shed']} "
          f"dead-lettered={stats['dead_lettered']}")
    b = gateway.batcher.stats()
    print(f"micro-batching:     {b['evaluations']} shared evaluations, "
          f"{b['prescreen_rejects']} pre-screen rejects over "
          f"{b['rounds']} rounds")
    print(f"rollout cache:      {cache.hits} hits / {cache.misses} misses "
          f"({cache.hit_rate:.0%})")
    print("per-category SLO (time in queue):")
    for line in gateway.slo.summary_lines():
        print(f"  {line}")

    same_outcomes = (
        stats["admitted"] == naive_gateway.stats()["admitted"]
        and stats["shed"] == naive_gateway.stats()["shed"]
        and result.telemetry_digest == naive_result.telemetry_digest
    )
    print(f"\nbatched vs naive dispatch: outcomes "
          f"{'identical' if same_outcomes else 'DIFFER'}")
    print(f"telemetry digest:   {result.telemetry_digest}")
    return 0 if same_outcomes else 1


if __name__ == "__main__":
    sys.exit(main())
