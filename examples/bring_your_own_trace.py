#!/usr/bin/env python3
"""Bring-your-own telemetry: CSV traces → profile → persist → explain.

The workflow a downstream operator would actually follow:

1. export per-second telemetry (cgroups CPU, GPU-Z counters) as CSV —
   here we synthesize it and write the same files a collector would;
2. load the CSVs and run the frame-grained profiler on them;
3. train the stage predictors and *persist* the whole profile as JSON
   ("profiling and model training only need to be performed once");
4. reload it in a fresh object and inspect what the predictor attends
   to via feature importances.

Run:  python examples/bring_your_own_trace.py
"""

import tempfile
from pathlib import Path

from repro import build_catalog, generate_corpus
from repro.analysis.report import format_table
from repro.core.pipeline import GameProfile
from repro.core.profiler import FrameGrainedProfiler, ProfilerConfig
from repro.core.predictor import StagePredictor
from repro.util.timeseries import ResourceSeries

GAME = "genshin"
SEED = 13


def main() -> None:
    catalog = build_catalog()
    spec = catalog[GAME]
    workdir = Path(tempfile.mkdtemp(prefix="cocg-"))
    print(f"workspace: {workdir}")

    # 1. "Collect" telemetry and write it as CSV (what a real collector
    #    exporting cgroup + GPU-Z counters would produce).
    bundles = generate_corpus(spec, n_players=4, sessions_per_player=3, seed=SEED)
    csv_paths = []
    for i, bundle in enumerate(bundles):
        path = workdir / f"{GAME}-session{i:02d}.csv"
        bundle.series.to_csv(path)
        csv_paths.append(path)
    print(f"wrote {len(csv_paths)} telemetry CSVs "
          f"({sum(p.stat().st_size for p in csv_paths) // 1024} KiB)")

    # 2. Load them back — from here on, nothing knows the traces were
    #    synthetic.
    traces = [ResourceSeries.from_csv(p) for p in csv_paths]
    profiler = FrameGrainedProfiler(
        GAME, config=ProfilerConfig(n_clusters=len(spec.clusters))
    )
    library = profiler.fit(traces)
    print("\n" + library.summary())

    # 3. Train a predictor on the profiled sessions and persist the
    #    whole artifact.
    segments = [
        (f"player-{i % 4}", profiler.segment_with(library, t.resample(5.0).values))
        for i, t in enumerate(traces)
    ]
    predictor = StagePredictor(library, spec.category, backend="gbdt", seed=SEED)
    accuracy = predictor.train(segments)
    print(f"\nGBDT next-stage accuracy: {accuracy:.1%}")

    profile = GameProfile(
        spec=spec, library=library,
        predictors={"gbdt": predictor}, corpus_segments=segments,
    )
    artifact = workdir / f"{GAME}.profile.json"
    profile.save(artifact)
    print(f"saved profile: {artifact} ({artifact.stat().st_size // 1024} KiB)")

    # 4. Reload and explain.
    reloaded = GameProfile.load(artifact, spec)
    report = reloaded.predictors["gbdt"].feature_report(top=6)
    print("\n" + format_table(
        ["feature", "importance"],
        [[name, weight] for name, weight in report],
        title="What the reloaded predictor attends to",
    ))
    hist = reloaded.library.execution_types[:1]
    predicted, confidence = reloaded.predictors["gbdt"].predict_next(hist)
    print(f"\nafter {hist[0]!r}, predicted next stage: {predicted!r} "
          f"(confidence {confidence:.0%})")


if __name__ == "__main__":
    main()
