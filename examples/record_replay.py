#!/usr/bin/env python3
"""Record a gateway-fronted fleet run, then replay it bit-for-bit.

Records one faulted serve run into a ``.cgtrace`` file — arrivals, the
fault schedule, and the observed stage timeline, sealed under the fleet
telemetry digest — then rebuilds a fresh fleet from the trace header and
drives it from the recorded workload.  The replay must reproduce the
recorded digest byte-for-byte; any drift raises
:class:`repro.trace.ReplayDivergence` naming the first divergent record.

With ``--scenario NAME`` the script records one of the shipped corpus
scenarios (``cocg corpus list``) instead of the ad-hoc run — the same
path CI's ``trace-smoke`` job exercises.

Run:  python examples/record_replay.py [--scenario NAME] [-o FILE]
"""

import argparse
import sys

from repro.faults import default_plan
from repro.trace import (
    ReplayDivergence,
    RunConfig,
    generate_scenario,
    record_run,
    replay_path,
    scenario_names,
)

HORIZON = 600
SEED = 11
GAMES = ("contra",)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario", choices=scenario_names(), default=None,
        help="record a shipped corpus scenario instead of the ad-hoc run",
    )
    parser.add_argument(
        "-o", "--output", default="run.cgtrace",
        help="trace file to write (default: run.cgtrace)",
    )
    args = parser.parse_args()

    if args.scenario:
        print(f"Recording corpus scenario {args.scenario!r}…")
        result, recorder = generate_scenario(args.scenario)
    else:
        print(f"Recording a faulted {HORIZON}s run of {', '.join(GAMES)}…")
        config = RunConfig(games=GAMES, nodes=2, horizon=HORIZON, seed=SEED)
        plan = default_plan(HORIZON, seed=SEED, crash_node="node-1")
        result, recorder = record_run(config, plan=plan)

    path = recorder.save(args.output)
    stats = recorder.stats()
    document = recorder.document
    print(f"recorded: {stats['arrivals']} arrivals, {stats['stages']} stage "
          f"records, {stats['faults']} scheduled faults -> {path}")
    print(f"fleet digest: {document.trailer.fleet_digest}")

    print("\nReplaying from the trace (fresh fleet, recorded workload)…")
    try:
        report = replay_path(path)
    except ReplayDivergence as exc:
        print(f"FAIL: {exc}")
        return 1
    for line in report.summary_lines():
        print(f"  {line}")
    print("\nOK: replay reproduced the recorded fleet digest byte-for-byte")
    return 0


if __name__ == "__main__":
    sys.exit(main())
