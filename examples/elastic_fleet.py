#!/usr/bin/env python3
"""Elastic capacity under fire: warm pools, spot reclaims, graceful drain.

Runs a two-node fleet with a :class:`repro.cluster.Provisioner` owning
the capacity plane — one pre-booted warm standby, seeded provision
latencies — under a reclamation storm: spot reclaims hit both original
nodes mid-run (each with a 45 s notice window during which its sessions
keep playing), while a provision-fail window delays replacements and the
warm pool is exhausted once.  Displaced sessions re-enter the bounded
retry queue; nothing is lost silently — the script asserts the
session-accountability ledger balances to zero and prints where every
admitted session went.

With ``--check-determinism`` the faulted run executes twice and the
script exits non-zero unless both telemetry digests (which now fold in
the provisioner's full lifecycle history) come back byte-identical.

Run:  python examples/elastic_fleet.py [--check-determinism]
"""

import argparse
import sys

from repro import CoCGStrategy, GameProfile, build_catalog
from repro.cluster import (
    ClusterScheduler,
    FleetExperiment,
    FleetNode,
    Provisioner,
    ProvisionerConfig,
)
from repro.faults import reclaim_storm_plan, run_chaos

HORIZON = 900
SEED = 11
RATE = 2.0
GAMES = ("contra", "dota2")


def build_profiles() -> dict:
    catalog = build_catalog()
    print(f"Profiling {', '.join(GAMES)}…")
    return {
        name: GameProfile.build(
            catalog[name], n_players=4, sessions_per_player=3, seed=SEED
        )
        for name in GAMES
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="run the faulted experiment twice and require identical "
             "telemetry digests (exit 1 otherwise)",
    )
    args = parser.parse_args()

    catalog = build_catalog()
    profiles = build_profiles()
    specs = [catalog[name] for name in GAMES]
    plan = reclaim_storm_plan(HORIZON, seed=SEED, nodes=("node-0", "node-1"))

    def make_cluster() -> ClusterScheduler:
        nodes = [
            FleetNode(f"node-{i}", CoCGStrategy(), profiles, seed=SEED + i)
            for i in range(2)
        ]
        return ClusterScheduler(nodes, policy="round-robin")

    def make_provisioner(cluster: ClusterScheduler) -> Provisioner:
        return Provisioner(
            cluster,
            lambda node_id: FleetNode(
                node_id, CoCGStrategy(), profiles, seed=SEED
            ),
            config=ProvisionerConfig(warm_pool_size=1, latency_base=20.0),
            seed=SEED,
        )

    if args.check_determinism:
        digests = []
        for attempt in (1, 2):
            cluster = make_cluster()
            result = FleetExperiment(
                cluster, specs,
                horizon=HORIZON, rate_per_minute=RATE, seed=SEED,
                fault_plan=plan, provisioner=make_provisioner(cluster),
            ).run()
            digests.append(result.telemetry_digest)
            print(f"faulted run {attempt}: digest {result.telemetry_digest}")
            if result.unaccounted_sessions:
                print(f"FAIL: {result.unaccounted_sessions} unaccounted sessions")
                return 1
        if digests[0] != digests[1]:
            print("FAIL: telemetry digests differ between identical replays")
            return 1
        print("OK: elastic replay is deterministic (digests identical, "
              "ledger balanced)")
        return 0

    report = run_chaos(
        make_cluster, specs,
        plan=plan, horizon=HORIZON, rate_per_minute=RATE, seed=SEED,
        make_provisioner=make_provisioner,
    )
    print()
    for line in report.summary_lines():
        print(line)
    acct = report.faulted.session_accounting
    print("\nwhere every session went:")
    for key in sorted(acct):
        print(f"  {key:22s}{acct[key]:>6d}")
    if report.faulted.unaccounted_sessions:
        print(f"FAIL: {report.faulted.unaccounted_sessions} unaccounted sessions")
        return 1
    print("ledger balanced: zero unaccounted sessions")
    print(f"\ntelemetry digest (faulted): {report.faulted.telemetry_digest}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
