#!/usr/bin/env python3
"""Fleet-of-fleets: regional shards behind the consistent-hash router.

The whole PR-10 story in one script:

1. certify the shard-plan certificate against the runtime entry points
   (a stale ``shardplan.json`` refuses to start the fleet);
2. run N regional shards — each an independent event stream with its
   own cluster and region-namespaced RNG — behind the session router;
3. merge the regional digests into one canonical cross-shard digest;
4. at N=1, prove the reduction guarantee: the merged digest equals the
   classic single-:class:`FleetExperiment` digest byte for byte;
5. with ``--check-determinism``, run everything twice and fail unless
   the merged digests come back identical.

Run:  python examples/fleet_of_fleets.py [--regions N]
                                         [--check-determinism]
"""

import argparse
import sys

from repro.cluster.experiment import FleetExperiment
from repro.fleet import FleetOfFleets, RegionSpec, certify_runtime
from repro.games.catalog import build_catalog
from repro.trace.harness import RunConfig, build_cluster, build_profiles

SEED = 19

CONFIG = RunConfig(
    games=("contra", "dota2"),
    nodes=2,
    horizon=600,
    rate_per_minute=6.0,
    seed=SEED,
    players=2,
    sessions=2,
    gateway=False,
)


def run_fleet(regions: int):
    fleet = FleetOfFleets(
        CONFIG, [RegionSpec(f"r{i}") for i in range(regions)]
    )
    return fleet.run()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--regions", type=int, default=4)
    parser.add_argument("--check-determinism", action="store_true",
                        help="run twice; fail unless merged digests match")
    args = parser.parse_args(argv)

    # 1. Startup certification — same gate as `cocg fleet`.
    plan = certify_runtime()
    print(f"shard plan certified: {plan['counts']['entry_points']} entry "
          f"points, {plan['counts']['shard_interfering']} interfering")

    # 2+3. The sharded run.
    result = run_fleet(args.regions)
    print(f"\n{args.regions} regions x {CONFIG.nodes} nodes, "
          f"{CONFIG.horizon}s horizon")
    print(f"{'region':8} {'routed':>6} {'completed':>9}  digest")
    for name in sorted(result.regions):
        outcome = result.regions[name]
        print(f"  {name:8} {result.requests_routed[name]:>4} "
              f"{sum(outcome.result.completed_runs.values()):>9}  "
              f"{outcome.digest[:16]}…")
    print(f"completed runs: {result.completed_runs}")
    print(f"merged digest:  {result.merged_digest}")

    # 4. The reduction guarantee, asserted live at N=1.
    if args.regions == 1:
        catalog = build_catalog()
        profiles = build_profiles(CONFIG, catalog)
        baseline = FleetExperiment(
            build_cluster(CONFIG, profiles),
            [catalog[g] for g in CONFIG.games],
            horizon=CONFIG.horizon,
            rate_per_minute=CONFIG.rate_per_minute,
            seed=CONFIG.seed,
            detect_interval=CONFIG.detect_interval,
        ).run()
        if result.merged_digest != baseline.telemetry_digest:
            print("FAIL: N=1 merged digest != single-fleet digest",
                  file=sys.stderr)
            return 1
        print("reduction guarantee holds: N=1 merged digest == "
              "single-fleet digest")

    # 5. Double-run byte-identity.
    if args.check_determinism:
        again = run_fleet(args.regions)
        same = again.merged_digest == result.merged_digest
        print(f"merged digests identical across runs: {same}")
        if not same:
            print("FAIL: fleet-of-fleets run is not deterministic",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
