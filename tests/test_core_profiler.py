"""Tests for the frame-grained profiler: clustering, loading detection,
stage segmentation."""

import numpy as np
import pytest

from repro.core.profiler import FrameGrainedProfiler, ProfilerConfig
from repro.core.stages import StageTypeId
from repro.games.tracegen import generate_corpus, generate_trace


class TestConfig:
    def test_defaults_valid(self):
        ProfilerConfig()

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            ProfilerConfig(n_clusters=0)
        with pytest.raises(ValueError):
            ProfilerConfig(frame_seconds=0)
        with pytest.raises(ValueError):
            ProfilerConfig(lookahead_frames=0)
        with pytest.raises(ValueError):
            ProfilerConfig(min_presence=1.5)
        with pytest.raises(ValueError):
            ProfilerConfig(k_values=(1, 2), n_clusters=None)


class TestFitToyGame:
    def test_recovers_k_automatically(self, toy_spec):
        bundles = generate_corpus(toy_spec, n_players=3, sessions_per_player=3, seed=1)
        prof = FrameGrainedProfiler("toy")
        prof.fit(bundles)
        assert prof.chosen_k_ == 3
        assert prof.sse_curve_ is not None

    def test_fixed_k_skips_sweep(self, toy_spec):
        bundles = generate_corpus(toy_spec, n_players=2, sessions_per_player=2, seed=1)
        prof = FrameGrainedProfiler("toy", config=ProfilerConfig(n_clusters=3))
        prof.fit(bundles)
        assert prof.chosen_k_ == 3
        assert prof.sse_curve_ is None

    def test_identifies_loading_cluster(self, toy_spec):
        bundles = generate_corpus(toy_spec, n_players=3, sessions_per_player=3, seed=1)
        lib = FrameGrainedProfiler("toy", config=ProfilerConfig(n_clusters=3)).fit(bundles)
        assert len(lib.loading_clusters) == 1
        (lc,) = lib.loading_clusters
        center = lib.centers[lc]
        assert center[1] < 0.3 * center[0]  # gpu ≪ cpu

    def test_discovers_three_stage_types(self, toy_spec):
        bundles = generate_corpus(toy_spec, n_players=3, sessions_per_player=3, seed=1)
        lib = FrameGrainedProfiler("toy", config=ProfilerConfig(n_clusters=3)).fit(bundles)
        assert len(lib.stage_types) == 3  # loading, quiet, heavy
        assert len(lib.execution_types) == 2

    def test_segment_alternation(self, toy_spec):
        bundles = generate_corpus(toy_spec, n_players=2, sessions_per_player=2, seed=2)
        prof = FrameGrainedProfiler("toy", config=ProfilerConfig(n_clusters=3))
        prof.fit(bundles)
        tb = generate_trace(toy_spec, "full", seed=9)
        segs = prof.segment(tb.frames().values)
        kinds = [s.is_loading for s in segs]
        # loading and execution strictly alternate for the toy script
        assert all(a != b for a, b in zip(kinds[:-1], kinds[1:]))
        exec_types = [s.type_id for s in segs if not s.is_loading]
        assert len(set(exec_types)) == 2

    def test_segment_frame_ranges_partition(self, toy_spec):
        bundles = generate_corpus(toy_spec, n_players=2, sessions_per_player=2, seed=2)
        prof = FrameGrainedProfiler("toy", config=ProfilerConfig(n_clusters=3))
        prof.fit(bundles)
        frames = generate_trace(toy_spec, "full", seed=5).frames().values
        segs = prof.segment(frames)
        assert segs[0].start_frame == 0
        assert segs[-1].end_frame == len(frames)
        for a, b in zip(segs[:-1], segs[1:]):
            assert a.end_frame == b.start_frame

    def test_segment_requires_fit(self):
        with pytest.raises(RuntimeError):
            FrameGrainedProfiler("toy").segment(np.zeros((3, 4)))

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            FrameGrainedProfiler("toy").fit([])


class TestMultiClusterStages:
    def test_interleaved_clusters_form_one_stage(self, catalog):
        """DOTA2's ranked match alternates lane/teamfight clusters inside
        one stage; the profiler must merge them into a 2-cluster type."""
        spec = catalog["dota2"]
        bundles = generate_corpus(spec, n_players=4, sessions_per_player=3, seed=3)
        prof = FrameGrainedProfiler("dota2", config=ProfilerConfig(n_clusters=5))
        lib = prof.fit(bundles)
        two_cluster_types = [t for t in lib.execution_types if len(t) == 2]
        assert two_cluster_types, "expected the lane+fight match type"
        match_type = max(
            two_cluster_types, key=lambda t: lib.stats(t).total_frames
        )
        # the match is by far the longest stage
        assert lib.stats(match_type).mean_duration_seconds() > 300

    def test_paper_k_recovered_for_all_games(self, catalog):
        """Fig 14: the automatic elbow recovers the published K on a
        fresh profiling corpus for every game."""
        expected = {"contra": 2, "csgo": 4, "genshin": 4, "dota2": 5,
                    "devil_may_cry": 6}
        for name, k in expected.items():
            bundles = generate_corpus(
                catalog[name], n_players=4, sessions_per_player=3, seed=7
            )
            prof = FrameGrainedProfiler(name)
            prof.fit(bundles)
            assert prof.chosen_k_ == k, name


class TestSegmentationRobustness:
    def test_boundary_artifacts_absorbed(self, toy_spec):
        """Sub-minimum execution segments merge into neighbours."""
        bundles = generate_corpus(toy_spec, n_players=2, sessions_per_player=3, seed=4)
        prof = FrameGrainedProfiler("toy", config=ProfilerConfig(n_clusters=3))
        prof.fit(bundles)
        for b in bundles:
            for s in prof.segment(b.frames().values):
                if not s.is_loading:
                    assert s.n_frames >= 2

    def test_stats_exclude_nonmember_frames(self, toy_spec):
        bundles = generate_corpus(toy_spec, n_players=2, sessions_per_player=2, seed=4)
        prof = FrameGrainedProfiler("toy", config=ProfilerConfig(n_clusters=3))
        lib = prof.fit(bundles)
        # The quiet type's peak must stay near the quiet cluster, far from
        # the heavy cluster, even though boundary frames may straddle.
        quiet = min(
            lib.execution_types, key=lambda t: lib.stats(t).mean[1]
        )
        assert lib.stats(quiet).peak[1] < 35
