"""Scripted state-machine tests for the CoCG control loop.

These drive :meth:`CoCGScheduler.control` with *crafted telemetry
windows* (the session object is placed but never advanced), so each
§IV-B2 path fires deterministically:

* loading → predicted stage start (``stage-start``);
* a transient dip misjudged as loading, reverted next tick
  (``transient-revert`` — the Figs 9/10 robustness story);
* a wrong stage belief re-matched by the rehearsal callback
  (``callback``) with the Eq-1 cushion;
* a starved, ceiling-pinned session probed upward (``probe``).
"""

import numpy as np
import pytest

from repro.core.scheduler import CoCGConfig, CoCGScheduler
from repro.games.session import GameSession
from repro.platform_.allocator import Allocator
from repro.platform_.resources import ResourceVector
from repro.platform_.server import GPUDevice, Server
from repro.sim.telemetry import TelemetryRecorder


@pytest.fixture
def rig(toy_spec, toy_profile):
    """A scheduler hosting one (never-advanced) toy session."""
    allocator = Allocator(Server("s", gpus=[GPUDevice()]))
    scheduler = CoCGScheduler(allocator, config=CoCGConfig())
    session = GameSession(toy_spec, "full", seed=0)
    decision = scheduler.try_admit(session, toy_profile, time=0)
    assert decision.admitted
    telemetry = TelemetryRecorder(noise_std=0.0, seed=0)
    lib = toy_profile.library
    quiet, heavy = sorted(lib.execution_types, key=lambda t: lib.stats(t).mean[1])
    return {
        "scheduler": scheduler,
        "session": session,
        "telemetry": telemetry,
        "lib": lib,
        "quiet": quiet,
        "heavy": heavy,
        "t": 0,
    }


def feed(rig, vector, *, seconds=5):
    """Record ``seconds`` of identical telemetry, then run one control
    cycle."""
    sid = rig["session"].session_id
    alloc = rig["scheduler"].allocation_of(sid)
    for _ in range(seconds):
        rig["telemetry"].record(
            rig["t"], sid, ResourceVector.from_array(vector), alloc
        )
        rig["t"] += 1
    rig["scheduler"].control(rig["t"], rig["telemetry"])


def actions(rig):
    return [d.action for d in rig["scheduler"].decision_log]


def stage_mean(rig, type_id):
    return rig["lib"].stats(type_id).mean


def loading_usage(rig):
    """Loading-like usage kept safely under the granted ceiling."""
    mean = rig["lib"].stats(rig["lib"].loading_type).mean.copy()
    mean[0] *= 0.9  # float below the ceiling so nothing pins
    return mean


class TestStateMachine:
    def test_stage_start_as_predicted(self, rig):
        feed(rig, loading_usage(rig))  # boot loading confirmed
        ctl = rig["scheduler"].sessions[rig["session"].session_id]
        predicted = ctl.predicted
        assert predicted is not None
        feed(rig, stage_mean(rig, predicted))
        assert "stage-start" in actions(rig)
        ctl = rig["scheduler"].sessions[rig["session"].session_id]
        assert ctl.phase == "execution"
        assert ctl.believed == predicted
        assert ctl.adjuster.total_errors == 0

    def _enter_heavy(self, rig):
        """Drive the scheduler until it believes the heavy stage.

        Boot loading → (predicted) first stage → feed heavy usage until
        the probe/callback machinery settles on heavy.  Returns the
        control state.
        """
        feed(rig, loading_usage(rig))
        ctl = rig["scheduler"].sessions[rig["session"].session_id]
        feed(rig, stage_mean(rig, ctl.predicted))
        heavy = rig["heavy"]
        for _ in range(6):
            ctl = rig["scheduler"].sessions[rig["session"].session_id]
            if ctl.phase == "execution" and ctl.believed == heavy:
                return ctl
            feed(rig, stage_mean(rig, heavy))
        ctl = rig["scheduler"].sessions[rig["session"].session_id]
        assert ctl.phase == "execution" and ctl.believed == heavy
        return ctl

    def test_transient_dip_recovers(self, rig):
        """A one-tick dip that looks like loading must not strand the
        session: within two detection ticks of the stage resuming, the
        scheduler believes the right stage again (via the transient
        revert or the promote-then-callback path)."""
        heavy = rig["heavy"]
        self._enter_heavy(rig)
        dip = np.array([36.0, 5.0, 9.0, 9.0])  # loading-like transient
        feed(rig, dip)
        ctl = rig["scheduler"].sessions[rig["session"].session_id]
        assert ctl.phase == "loading"  # misjudged — the Figs 9/10 event
        assert ctl.maybe_transient
        for _ in range(3):
            feed(rig, stage_mean(rig, heavy))
            ctl = rig["scheduler"].sessions[rig["session"].session_id]
            if ctl.phase == "execution" and ctl.believed == heavy:
                break
        assert ctl.phase == "execution" and ctl.believed == heavy
        acts = actions(rig)
        assert (
            "transient-revert" in acts
            or "callback" in acts
            or "stage-start" in acts
        )

    def test_real_loading_confirmed_after_second_window(self, rig):
        self._enter_heavy(rig)
        dip = np.array([36.0, 5.0, 9.0, 9.0])
        feed(rig, dip)   # loading begins…
        feed(rig, loading_usage(rig))   # …and persists
        ctl = rig["scheduler"].sessions[rig["session"].session_id]
        assert ctl.phase == "loading"
        assert not ctl.maybe_transient  # confirmed real
        assert rig["heavy"] in ctl.exec_history

    def test_rehearsal_callback_rematches_stage(self, rig):
        """With the heavy stage believed, sustained quiet-stage usage is
        re-matched by the rehearsal callback (quiet fits under the heavy
        ceiling, so no clipping masks it)."""
        heavy, quiet = rig["heavy"], rig["quiet"]
        self._enter_heavy(rig)
        feed(rig, stage_mean(rig, quiet))  # reality disagrees, unclipped
        assert "callback" in actions(rig)
        ctl = rig["scheduler"].sessions[rig["session"].session_id]
        assert ctl.believed == quiet
        assert ctl.adjuster.total_errors >= 1
        # Eq-1 cushion applied on the callback grant…
        assert ctl.redundant
        # …and released once the stage is confirmed.
        feed(rig, stage_mean(rig, quiet))
        ctl = rig["scheduler"].sessions[rig["session"].session_id]
        assert not ctl.redundant

    def test_pinned_window_probes_upward(self, rig):
        feed(rig, loading_usage(rig))
        ctl = rig["scheduler"].sessions[rig["session"].session_id]
        predicted = ctl.predicted
        feed(rig, stage_mean(rig, predicted))
        sid = rig["session"].session_id
        before = rig["scheduler"].allocation_of(sid)
        # Usage pinned exactly at the ceiling on every meaningful dim.
        feed(rig, before.array.copy())
        assert "probe" in actions(rig)
        after = rig["scheduler"].allocation_of(sid)
        assert after.dominates(before)
        assert np.any(after.array > before.array + 1e-9)

    def test_decision_log_orders_by_time(self, rig):
        feed(rig, loading_usage(rig))
        ctl = rig["scheduler"].sessions[rig["session"].session_id]
        feed(rig, stage_mean(rig, ctl.predicted))
        times = [d.time for d in rig["scheduler"].decision_log]
        assert times == sorted(times)
        assert rig["scheduler"].decision_log[0].action == "admit"
