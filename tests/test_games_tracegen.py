"""Tests for trace/corpus generation."""

import numpy as np
import pytest

from repro.games.category import GameCategory
from repro.games.tracegen import generate_corpus, generate_trace


class TestGenerateTrace:
    def test_trace_matches_truth_length(self, toy_spec):
        tb = generate_trace(toy_spec, "full", seed=0)
        assert len(tb.series) == len(tb.truth)
        assert tb.game == "toygame" and tb.script == "full"

    def test_loading_mask_marks_loading_stages(self, toy_spec):
        tb = generate_trace(toy_spec, "full", seed=0)
        names = np.array(tb.truth.stage_names)
        mask = tb.truth.loading_mask
        assert set(names[mask]) <= {"boot", "mid", "exit"}
        assert set(names[~mask]) <= {"quiet", "heavy"}

    def test_boundaries_are_contiguous(self, toy_spec):
        tb = generate_trace(toy_spec, "full", seed=1)
        bounds = tb.truth.stage_boundaries()
        assert bounds[0][1] == 0
        for (_, _, e1), (_, s2, _) in zip(bounds[:-1], bounds[1:]):
            assert e1 == s2
        assert bounds[-1][2] == len(tb.truth)

    def test_frames_aggregate(self, toy_spec):
        tb = generate_trace(toy_spec, "full", seed=2)
        frames = tb.frames()
        assert frames.period == 5.0
        assert frames.n_samples == len(tb.series) // 5

    def test_frame_truth_majority(self, toy_spec):
        tb = generate_trace(toy_spec, "full", seed=3)
        types = tb.frame_truth_stage_types()
        assert len(types) == len(tb.frames())
        assert all(isinstance(t, frozenset) for t in types)

    def test_deterministic(self, toy_spec):
        a = generate_trace(toy_spec, "full", seed=7)
        b = generate_trace(toy_spec, "full", seed=7)
        np.testing.assert_array_equal(a.series.values, b.series.values)

    def test_max_seconds_truncates(self, toy_spec):
        tb = generate_trace(toy_spec, "full", seed=0, max_seconds=20)
        assert len(tb.series) == 20


class TestGenerateCorpus:
    def test_corpus_size(self, toy_spec):
        bundles = generate_corpus(toy_spec, n_players=3, sessions_per_player=2, seed=0)
        assert len(bundles) == 6

    def test_players_are_stable_across_rounds(self, toy_spec):
        bundles = generate_corpus(toy_spec, n_players=2, sessions_per_player=3, seed=0)
        players = {b.player_id for b in bundles}
        assert len(players) == 2

    def test_round_major_ordering(self, toy_spec):
        bundles = generate_corpus(toy_spec, n_players=3, sessions_per_player=2, seed=0)
        first_round = [b.player_id for b in bundles[:3]]
        assert len(set(first_round)) == 3  # all players once per round

    def test_console_campaign_order(self, catalog):
        spec = catalog["devil_may_cry"]
        bundles = generate_corpus(spec, n_players=1, sessions_per_player=3, seed=0)
        assert [b.script for b in bundles] == ["level-1", "level-2", "level-3"]

    def test_mobile_players_have_favorites(self, catalog):
        spec = catalog["genshin"]
        bundles = generate_corpus(spec, n_players=2, sessions_per_player=6, seed=0)
        for pid in {b.player_id for b in bundles}:
            scripts = [b.script for b in bundles if b.player_id == pid]
            top = max(set(scripts), key=scripts.count)
            assert scripts.count(top) >= 4  # favoritism visible

    def test_mmo_groups_share_scripts(self, catalog):
        spec = catalog["dota2"]
        bundles = generate_corpus(
            spec, n_players=6, sessions_per_player=4, seed=0, group_size=3
        )
        agree = total = 0
        for r in range(4):
            round_bundles = bundles[r * 6 : (r + 1) * 6]
            for g in (round_bundles[:3], round_bundles[3:]):
                total += 1
                if len({b.script for b in g}) == 1:
                    agree += 1
        assert agree / total > 0.5

    def test_scripts_filter(self, toy_spec):
        bundles = generate_corpus(
            toy_spec, n_players=1, sessions_per_player=2, seed=0, scripts=["full"]
        )
        assert all(b.script == "full" for b in bundles)

    def test_unknown_script_rejected(self, toy_spec):
        with pytest.raises(KeyError):
            generate_corpus(toy_spec, scripts=["ghost"])

    def test_invalid_sizes(self, toy_spec):
        with pytest.raises(ValueError):
            generate_corpus(toy_spec, n_players=0)
