"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_catalog_parses(self):
        args = build_parser().parse_args(["catalog"])
        assert args.command == "catalog"

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile", "contra"])
        assert args.game == "contra"
        assert args.players == 6 and args.sessions == 5

    def test_colocate_multiple_games(self):
        args = build_parser().parse_args(
            ["colocate", "genshin", "contra", "--strategy", "vbp"]
        )
        assert args.games == ["genshin", "contra"]
        assert args.strategy == "vbp"

    def test_invalid_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["colocate", "contra", "--strategy", "magic"])

    def test_fleet_flags(self):
        args = build_parser().parse_args(
            ["fleet", "contra", "--nodes", "2", "--policy", "best-fit",
             "--heterogeneous"]
        )
        assert args.nodes == 2 and args.policy == "best-fit"
        assert args.heterogeneous

    def test_chaos_flags(self):
        args = build_parser().parse_args(
            ["chaos", "contra", "dota2", "--nodes", "3",
             "--horizon", "600", "--plan", "plan.json"]
        )
        assert args.command == "chaos"
        assert args.games == ["contra", "dota2"]
        assert args.nodes == 3 and args.horizon == 600
        assert args.plan == "plan.json"

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos", "contra"])
        assert args.nodes == 2 and args.plan is None
        assert args.policy == "round-robin"
        assert not args.validate
        assert args.scenario == "default" and args.warm_pool is None

    def test_chaos_validate_needs_no_games(self):
        args = build_parser().parse_args(
            ["chaos", "--validate", "--plan", "plan.json"]
        )
        assert args.validate and args.games == []

    def test_chaos_scenario_and_warm_pool(self):
        args = build_parser().parse_args(
            ["chaos", "contra", "--scenario", "reclaim-storm",
             "--warm-pool", "2"]
        )
        assert args.scenario == "reclaim-storm" and args.warm_pool == 2
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "contra", "--scenario", "bad"])


class TestCommands:
    def test_catalog_lists_games(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        for game in ("contra", "csgo", "dota2", "genshin", "devil_may_cry"):
            assert game in out

    def test_profile_and_save(self, capsys, tmp_path):
        out_file = tmp_path / "contra.profile.json"
        code = main([
            "profile", "contra", "-o", str(out_file),
            "--players", "3", "--sessions", "3", "--seed", "1",
        ])
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert payload["game"] == "contra"
        out = capsys.readouterr().out
        assert "accuracy" in out

    def test_profile_unknown_game(self):
        with pytest.raises(SystemExit, match="unknown game"):
            main(["profile", "tetris"])

    def test_colocate_uses_saved_profile(self, capsys, tmp_path):
        main([
            "profile", "contra", "-o", str(tmp_path / "contra.profile.json"),
            "--players", "3", "--sessions", "3", "--seed", "1",
        ])
        capsys.readouterr()
        code = main([
            "colocate", "contra", "--horizon", "400",
            "--profiles-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "loaded profile" in out
        assert "throughput" in out

    def test_colocate_unknown_game(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown game"):
            main(["colocate", "tetris", "--profiles-dir", str(tmp_path)])

    def test_fleet_runs(self, capsys, tmp_path):
        main([
            "profile", "contra", "-o", str(tmp_path / "contra.profile.json"),
            "--players", "3", "--sessions", "3", "--seed", "1",
        ])
        capsys.readouterr()
        code = main([
            "fleet", "contra", "--nodes", "2", "--horizon", "500",
            "--rate", "3.0", "--profiles-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet of 2 nodes" in out
        assert "throughput" in out

    def test_chaos_runs_with_custom_plan(self, capsys, tmp_path):
        main([
            "profile", "contra", "-o", str(tmp_path / "contra.profile.json"),
            "--players", "3", "--sessions", "3", "--seed", "1",
        ])
        capsys.readouterr()
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps({
            "seed": 3,
            "faults": [
                {"kind": "node-crash", "time": 150.0, "node": "node-1",
                 "recover_after": 100.0},
                {"kind": "telemetry-dropout", "time": 0.0, "rate": 0.02,
                 "duration": 500.0},
            ],
        }))
        code = main([
            "chaos", "contra", "--nodes", "2", "--horizon", "500",
            "--plan", str(plan_file), "--profiles-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "loaded fault plan" in out
        assert "fault-free" in out and "faulted" in out
        assert "telemetry digest" in out

    def test_chaos_validate_ok(self, capsys, tmp_path):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps({
            "seed": 3,
            "faults": [
                {"kind": "spot-reclaim", "time": 60.0, "node": "node-0",
                 "notice": 30.0},
                {"kind": "provision-fail", "time": 10.0, "duration": 45.0},
            ],
        }))
        code = main(["chaos", "--validate", "--plan", str(plan_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "ok (2 faults, seed 3)" in out

    def test_chaos_validate_reports_problems(self, capsys, tmp_path):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps({
            "seed": 3,
            "faults": [{"kind": "spot-reclaim", "time": 60.0, "grace": 1.0}],
        }))
        code = main(["chaos", "--validate", "--plan", str(plan_file)])
        assert code == 1
        captured = capsys.readouterr()
        # Diagnostics are routed to stderr; stdout stays report-only.
        assert "faults[0]" in captured.err and "grace" in captured.err
        assert "faults[0]" not in captured.out

    def test_chaos_validate_rejects_bad_json(self, capsys, tmp_path):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text("{not json")
        assert main(["chaos", "--validate", "--plan", str(plan_file)]) == 1

    def test_chaos_validate_requires_plan(self, capsys):
        assert main(["chaos", "--validate"]) == 2

    def test_chaos_games_required_without_validate(self, capsys):
        assert main(["chaos"]) == 2

    def test_chaos_bad_plan_points_at_validate(self, capsys, tmp_path):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps({"seed": 3, "faults": [
            {"kind": "meteor-strike", "time": 1.0},
        ]}))
        code = main(["chaos", "contra", "--plan", str(plan_file)])
        assert code == 2
        assert "--validate" in capsys.readouterr().err

    def test_chaos_reclaim_storm_scenario(self, capsys, tmp_path):
        main([
            "profile", "contra", "-o", str(tmp_path / "contra.profile.json"),
            "--players", "3", "--sessions", "3", "--seed", "1",
        ])
        capsys.readouterr()
        code = main([
            "chaos", "contra", "--nodes", "2", "--horizon", "400",
            "--scenario", "reclaim-storm", "--warm-pool", "1",
            "--profiles-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "reclaim-storm" in out
        assert "(unaccounted: 0)" in out
        assert "WARNING" not in out


class TestTraceCommands:
    """``cocg record`` / ``cocg replay`` / ``cocg corpus``."""

    def test_record_flags(self):
        args = build_parser().parse_args(
            ["record", "contra", "-o", "t.cgtrace", "--horizon", "200"]
        )
        assert args.command == "record"
        assert args.output == "t.cgtrace" and args.horizon == 200
        assert args.warm_pool is None and args.plan is None

    def test_corpus_flags(self):
        args = build_parser().parse_args(["corpus", "generate", "raid-night"])
        assert args.action == "generate" and args.names == ["raid-night"]
        assert args.out == "corpus"

    def test_record_then_replay_round_trip(self, capsys, tmp_path):
        trace = tmp_path / "run.cgtrace"
        code = main([
            "record", "contra", "--horizon", "150", "--seed", "3",
            "-o", str(trace),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet digest" in out and str(trace) in out
        assert trace.exists()

        code = main(["replay", str(trace)])
        assert code == 0
        captured = capsys.readouterr()
        assert "digest match:      yes" in captured.out
        assert captured.err == ""

    def test_replay_unreadable_trace_errors_to_stderr(self, capsys, tmp_path):
        missing = tmp_path / "nope.cgtrace"
        assert main(["replay", str(missing)]) == 2
        captured = capsys.readouterr()
        assert str(missing) in captured.err
        assert captured.out == ""

    def test_replay_tampered_trace_fails(self, capsys, tmp_path):
        trace = tmp_path / "run.cgtrace"
        main([
            "record", "contra", "--horizon", "150", "--seed", "3",
            "-o", str(trace),
        ])
        capsys.readouterr()
        text = trace.read_text()
        trace.write_text(text.replace('"fleet_digest":"', '"fleet_digest":"0'))
        code = main(["replay", str(trace)])
        assert code == 1
        captured = capsys.readouterr()
        assert "digest match:      NO" in captured.out
        assert "diverged" in captured.err

    def test_record_unknown_game_errors_to_stderr(self, capsys, tmp_path):
        code = main([
            "record", "nonsuch", "-o", str(tmp_path / "t.cgtrace"),
        ])
        assert code == 2
        captured = capsys.readouterr()
        assert "nonsuch" in captured.err

    def test_corpus_list(self, capsys):
        assert main(["corpus", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("launch-day", "diurnal-wave", "raid-night",
                     "mobile-burst"):
            assert name in out

    def test_corpus_generate_unknown_scenario(self, capsys, tmp_path):
        code = main([
            "corpus", "generate", "nonsuch", "--out", str(tmp_path),
        ])
        assert code == 2
        assert "nonsuch" in capsys.readouterr().err
