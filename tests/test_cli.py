"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_catalog_parses(self):
        args = build_parser().parse_args(["catalog"])
        assert args.command == "catalog"

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile", "contra"])
        assert args.game == "contra"
        assert args.players == 6 and args.sessions == 5

    def test_colocate_multiple_games(self):
        args = build_parser().parse_args(
            ["colocate", "genshin", "contra", "--strategy", "vbp"]
        )
        assert args.games == ["genshin", "contra"]
        assert args.strategy == "vbp"

    def test_invalid_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["colocate", "contra", "--strategy", "magic"])

    def test_fleet_flags(self):
        args = build_parser().parse_args(
            ["fleet", "contra", "--nodes", "2", "--policy", "best-fit",
             "--heterogeneous"]
        )
        assert args.nodes == 2 and args.policy == "best-fit"
        assert args.heterogeneous

    def test_chaos_flags(self):
        args = build_parser().parse_args(
            ["chaos", "contra", "dota2", "--nodes", "3",
             "--horizon", "600", "--plan", "plan.json"]
        )
        assert args.command == "chaos"
        assert args.games == ["contra", "dota2"]
        assert args.nodes == 3 and args.horizon == 600
        assert args.plan == "plan.json"

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos", "contra"])
        assert args.nodes == 2 and args.plan is None
        assert args.policy == "round-robin"
        assert not args.validate
        assert args.scenario == "default" and args.warm_pool is None

    def test_chaos_validate_needs_no_games(self):
        args = build_parser().parse_args(
            ["chaos", "--validate", "--plan", "plan.json"]
        )
        assert args.validate and args.games == []

    def test_chaos_scenario_and_warm_pool(self):
        args = build_parser().parse_args(
            ["chaos", "contra", "--scenario", "reclaim-storm",
             "--warm-pool", "2"]
        )
        assert args.scenario == "reclaim-storm" and args.warm_pool == 2
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "contra", "--scenario", "bad"])


class TestCommands:
    def test_catalog_lists_games(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        for game in ("contra", "csgo", "dota2", "genshin", "devil_may_cry"):
            assert game in out

    def test_profile_and_save(self, capsys, tmp_path):
        out_file = tmp_path / "contra.profile.json"
        code = main([
            "profile", "contra", "-o", str(out_file),
            "--players", "3", "--sessions", "3", "--seed", "1",
        ])
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert payload["game"] == "contra"
        out = capsys.readouterr().out
        assert "accuracy" in out

    def test_profile_unknown_game(self):
        with pytest.raises(SystemExit, match="unknown game"):
            main(["profile", "tetris"])

    def test_colocate_uses_saved_profile(self, capsys, tmp_path):
        main([
            "profile", "contra", "-o", str(tmp_path / "contra.profile.json"),
            "--players", "3", "--sessions", "3", "--seed", "1",
        ])
        capsys.readouterr()
        code = main([
            "colocate", "contra", "--horizon", "400",
            "--profiles-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "loaded profile" in out
        assert "throughput" in out

    def test_colocate_unknown_game(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown game"):
            main(["colocate", "tetris", "--profiles-dir", str(tmp_path)])

    def test_fleet_runs(self, capsys, tmp_path):
        main([
            "profile", "contra", "-o", str(tmp_path / "contra.profile.json"),
            "--players", "3", "--sessions", "3", "--seed", "1",
        ])
        capsys.readouterr()
        code = main([
            "fleet", "contra", "--nodes", "2", "--horizon", "500",
            "--rate", "3.0", "--profiles-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet of 2 nodes" in out
        assert "throughput" in out

    def test_chaos_runs_with_custom_plan(self, capsys, tmp_path):
        main([
            "profile", "contra", "-o", str(tmp_path / "contra.profile.json"),
            "--players", "3", "--sessions", "3", "--seed", "1",
        ])
        capsys.readouterr()
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps({
            "seed": 3,
            "faults": [
                {"kind": "node-crash", "time": 150.0, "node": "node-1",
                 "recover_after": 100.0},
                {"kind": "telemetry-dropout", "time": 0.0, "rate": 0.02,
                 "duration": 500.0},
            ],
        }))
        code = main([
            "chaos", "contra", "--nodes", "2", "--horizon", "500",
            "--plan", str(plan_file), "--profiles-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "loaded fault plan" in out
        assert "fault-free" in out and "faulted" in out
        assert "telemetry digest" in out

    def test_chaos_validate_ok(self, capsys, tmp_path):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps({
            "seed": 3,
            "faults": [
                {"kind": "spot-reclaim", "time": 60.0, "node": "node-0",
                 "notice": 30.0},
                {"kind": "provision-fail", "time": 10.0, "duration": 45.0},
            ],
        }))
        code = main(["chaos", "--validate", "--plan", str(plan_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "ok (2 faults, seed 3)" in out

    def test_chaos_validate_reports_problems(self, capsys, tmp_path):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps({
            "seed": 3,
            "faults": [{"kind": "spot-reclaim", "time": 60.0, "grace": 1.0}],
        }))
        code = main(["chaos", "--validate", "--plan", str(plan_file)])
        assert code == 1
        out = capsys.readouterr().out
        assert "faults[0]" in out and "grace" in out

    def test_chaos_validate_rejects_bad_json(self, capsys, tmp_path):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text("{not json")
        assert main(["chaos", "--validate", "--plan", str(plan_file)]) == 1

    def test_chaos_validate_requires_plan(self, capsys):
        assert main(["chaos", "--validate"]) == 2

    def test_chaos_games_required_without_validate(self, capsys):
        assert main(["chaos"]) == 2

    def test_chaos_bad_plan_points_at_validate(self, capsys, tmp_path):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps({"seed": 3, "faults": [
            {"kind": "meteor-strike", "time": 1.0},
        ]}))
        code = main(["chaos", "contra", "--plan", str(plan_file)])
        assert code == 2
        out = capsys.readouterr().out
        assert "--validate" in out

    def test_chaos_reclaim_storm_scenario(self, capsys, tmp_path):
        main([
            "profile", "contra", "-o", str(tmp_path / "contra.profile.json"),
            "--players", "3", "--sessions", "3", "--seed", "1",
        ])
        capsys.readouterr()
        code = main([
            "chaos", "contra", "--nodes", "2", "--horizon", "400",
            "--scenario", "reclaim-storm", "--warm-pool", "1",
            "--profiles-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "reclaim-storm" in out
        assert "(unaccounted: 0)" in out
        assert "WARNING" not in out
