"""Tests for :mod:`repro.trace` — format, players, record/replay, corpus.

The load-bearing property is the round trip: ``write -> read -> write``
is byte-identity, and replaying a recorded run reproduces the recorded
fleet telemetry digest exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cluster.fleet import ClusterScheduler, FleetNode
from repro.cluster.provisioner import Provisioner
from repro.faults.plan import FaultPlan
from repro.games.category import GameCategory
from repro.games.player import PlayerModel
from repro.trace import (
    SCENARIOS,
    ReplayDivergence,
    RunConfig,
    ScenarioArrivals,
    TraceDigestError,
    TraceDocument,
    TraceFormatError,
    TraceRecorder,
    TraceSchemaError,
    TraceTruncatedError,
    behaviour_names,
    behaviour_of,
    config_fingerprint,
    get_behaviour,
    get_scenario,
    make_player,
    record_run,
    register_behaviour,
    replay_document,
    replay_path,
    scenario_names,
)
from repro.trace.corpus import RateEnvelope
from repro.trace.players import BEHAVIOURS, PlayerBehaviour, ScriptedPlayer


@pytest.fixture(scope="module")
def recorded():
    """One short recorded run shared by the whole module (runs once)."""
    config = RunConfig(games=("contra",), nodes=2, horizon=150, seed=3)
    result, recorder = record_run(config)
    return config, result, recorder


@pytest.fixture(scope="module")
def document(recorded):
    return recorded[2].document


# ---------------------------------------------------------------------------
# Format: round trip + strict rejection
# ---------------------------------------------------------------------------

class TestFormatRoundTrip:
    def test_write_read_write_is_byte_identity(self, document):
        text = document.dumps()
        assert TraceDocument.loads(text).dumps() == text

    def test_save_load_round_trip(self, document, tmp_path):
        path = document.save(tmp_path / "run.cgtrace")
        assert TraceDocument.load(path).dumps() == document.dumps()

    def test_body_is_sorted_and_counted(self, document):
        lines = document.body_lines()
        assert document.trailer.records == len(lines)
        assert document.trailer.payload_digest == document.payload_digest()

    def test_fingerprint_matches_config(self, document):
        assert document.header.fingerprint == config_fingerprint(
            document.header.config
        )


class TestFormatRejection:
    def test_empty_text_is_truncated(self):
        with pytest.raises(TraceTruncatedError, match="no header"):
            TraceDocument.loads("")

    def test_missing_trailer_is_truncated(self, document):
        lines = document.dumps().rstrip("\n").split("\n")
        with pytest.raises(TraceTruncatedError, match="truncated"):
            TraceDocument.loads("\n".join(lines[:-1]) + "\n")

    def test_removed_body_record_is_truncation(self, document):
        lines = document.dumps().rstrip("\n").split("\n")
        del lines[2]  # a body record; the trailer count now disagrees
        with pytest.raises(TraceTruncatedError, match="truncated or spliced"):
            TraceDocument.loads("\n".join(lines) + "\n")

    def test_unknown_schema_rejected_by_name(self, document):
        text = document.dumps().replace(
            '"schema":"cocg-trace/1"', '"schema":"cocg-trace/99"', 1
        )
        with pytest.raises(TraceSchemaError, match="cocg-trace/99") as info:
            TraceDocument.loads(text)
        assert "cocg-trace/1" in str(info.value)  # lists what it understands

    def test_unknown_field_rejected_by_name(self, document):
        lines = document.dumps().rstrip("\n").split("\n")
        payload = json.loads(lines[1])
        payload["zzz_extra"] = 1
        lines[1] = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        with pytest.raises(TraceFormatError, match="zzz_extra"):
            TraceDocument.loads("\n".join(lines) + "\n")

    def test_unknown_record_kind_rejected_by_name(self, document):
        lines = document.dumps().rstrip("\n").split("\n")
        lines.insert(1, '{"record":"teleport","t":0.0}')
        with pytest.raises(TraceFormatError, match="teleport"):
            TraceDocument.loads("\n".join(lines) + "\n")

    def test_out_of_order_body_rejected(self, document):
        lines = document.dumps().rstrip("\n").split("\n")
        assert len(lines) > 4, "need at least two body records"
        lines[1], lines[2] = lines[2], lines[1]
        with pytest.raises(TraceFormatError, match="out of order"):
            TraceDocument.loads("\n".join(lines) + "\n")

    def test_payload_digest_mismatch_raises(self, document):
        text = document.dumps().replace(
            f'"payload_digest":"{document.trailer.payload_digest}"',
            '"payload_digest":"' + "0" * 64 + '"',
        )
        with pytest.raises(TraceDigestError, match="payload digest"):
            TraceDocument.loads(text)

    def test_edited_config_breaks_fingerprint(self, document):
        text = document.dumps().replace('"seed":3', '"seed":4', 1)
        with pytest.raises(TraceDigestError, match="fingerprint"):
            TraceDocument.loads(text)

    def test_garbage_after_trailer_rejected(self, document):
        with pytest.raises(TraceFormatError, match="not the last"):
            TraceDocument.loads(document.dumps() + '{"record":"header"}\n')


# ---------------------------------------------------------------------------
# RunConfig
# ---------------------------------------------------------------------------

class TestRunConfig:
    def test_round_trip_elides_defaults(self):
        config = RunConfig(games=("contra",))
        assert config.to_dict() == {"games": ["contra"]}
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_round_trip_keeps_overrides(self):
        config = RunConfig(
            games=("contra", "dota2"), nodes=4, horizon=300, warm_pool=2
        )
        payload = config.to_dict()
        assert payload["nodes"] == 4 and payload["warm_pool"] == 2
        assert "policy" not in payload  # still default
        assert RunConfig.from_dict(payload) == config

    def test_unknown_key_rejected_by_name(self):
        with pytest.raises(ValueError, match="zzz"):
            RunConfig.from_dict({"games": ["contra"], "zzz": 1})

    def test_validation(self):
        with pytest.raises(ValueError, match="games"):
            RunConfig(games=())
        with pytest.raises(ValueError, match="nodes"):
            RunConfig(games=("contra",), nodes=0)
        with pytest.raises(ValueError, match="strategy"):
            RunConfig(games=("contra",), strategy="magic")


# ---------------------------------------------------------------------------
# Scripted players
# ---------------------------------------------------------------------------

class TestScriptedPlayers:
    def test_builtin_registry(self):
        assert list(behaviour_names()) == sorted(
            ["organic", "afk", "grinder", "tourist", "raider"]
        )
        with pytest.raises(KeyError, match="afk"):
            get_behaviour("speedrunner")  # message lists known names

    def test_organic_matches_live_loadgen_player(self):
        scripted = make_player("arr-contra-0", GameCategory.WEB, "organic")
        live = PlayerModel("arr-contra-0", GameCategory.WEB, seed=0)
        assert type(scripted) is PlayerModel
        assert scripted.duration_sigma == live.duration_sigma
        assert scripted.deviate_probability == live.deviate_probability
        assert behaviour_of(scripted) == "organic"

    def test_scripted_player_scales_knobs(self):
        base = PlayerModel("p", GameCategory.MMO, seed=0)
        afk = make_player("p", GameCategory.MMO, "afk")
        raider = make_player("p", GameCategory.MMO, "raider")
        assert isinstance(afk, ScriptedPlayer)
        assert afk.duration_sigma > base.duration_sigma  # dawdles
        assert afk.burst_rate < base.burst_rate
        assert raider.burst_rate > base.burst_rate  # raid spikes
        assert behaviour_of(raider) == "raider"

    def test_probabilities_stay_clamped(self):
        for name in behaviour_names():
            player = make_player("p", GameCategory.MMO, name)
            assert 0.0 <= player.deviate_probability <= 1.0
            assert 0.0 <= player.burst_rate <= 1.0

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="afk") as excinfo:
            register_behaviour(PlayerBehaviour("afk", "dup"))
        # The collision error names every registered behaviour, sorted,
        # so the caller can see what is taken without a second query.
        assert f"known: {', '.join(behaviour_names())}" in str(excinfo.value)
        assert list(behaviour_names()) == sorted(behaviour_names())
        assert "afk" in BEHAVIOURS

    def test_behaviour_validation(self):
        with pytest.raises(ValueError):
            PlayerBehaviour("bad", "negative", duration_scale=-1.0)


# ---------------------------------------------------------------------------
# Recorder + replay: the digest contract
# ---------------------------------------------------------------------------

class TestRecordReplay:
    def test_replay_reproduces_fleet_digest(self, recorded, document):
        _, result, _ = recorded
        assert document.trailer.fleet_digest == result.telemetry_digest
        report = replay_document(document)
        assert report.matched
        assert report.replayed_digest == result.telemetry_digest

    def test_replay_path_round_trip(self, document, tmp_path):
        path = document.save(tmp_path / "run.cgtrace")
        assert replay_path(path).matched

    def test_tampered_fleet_digest_raises_named_error(self, document):
        tampered = TraceDocument(
            header=document.header,
            arrivals=list(document.arrivals),
            stages=list(document.stages),
            faults=list(document.faults),
        ).sealed("f" * 64)
        with pytest.raises(ReplayDivergence, match="does not match"):
            replay_document(tampered)
        report = replay_document(tampered, strict=False)
        assert not report.matched
        # The timelines agree record-for-record; only the sealed digest
        # was forged, so no divergent record can be named.
        assert report.divergence == ""

    def test_recorder_requires_finalize(self):
        recorder = TraceRecorder(seed=0, config={"games": ["contra"]})
        assert not recorder.finalized
        with pytest.raises(RuntimeError, match="finalize"):
            recorder.document

    def test_faulted_run_replays(self):
        plan = FaultPlan(seed=9).session_kill(60.0, requeue=False)
        config = RunConfig(games=("contra",), nodes=2, horizon=150, seed=3)
        _, recorder = record_run(config, plan=plan)
        doc = recorder.document
        assert len(doc.faults) == 1
        assert doc.header.config["fault_seed"] == 9
        assert replay_document(doc).matched


# ---------------------------------------------------------------------------
# Corpus
# ---------------------------------------------------------------------------

class TestCorpus:
    def test_shipped_scenarios(self):
        assert scenario_names() == sorted(SCENARIOS)
        assert set(scenario_names()) == {
            "launch-day", "diurnal-wave", "raid-night", "mobile-burst",
        }
        with pytest.raises(KeyError, match="launch-day"):
            get_scenario("nonsuch")

    def test_envelope_steps(self):
        env = RateEnvelope(((0.0, 2.0), (100.0, 10.0), (200.0, 4.0)))
        assert env.rate_at(0.0) == 2.0
        assert env.rate_at(99.9) == 2.0
        assert env.rate_at(100.0) == 10.0
        assert env.rate_at(500.0) == 4.0
        assert env.peak == 10.0

    def test_envelope_validation(self):
        with pytest.raises(ValueError, match="t=0"):
            RateEnvelope(((10.0, 2.0),))
        with pytest.raises(ValueError, match="ascend"):
            RateEnvelope(((0.0, 2.0), (50.0, 3.0), (20.0, 1.0)))
        with pytest.raises(ValueError, match="positive"):
            RateEnvelope(((0.0, 0.0),))

    def test_scenario_arrivals_deterministic(self, catalog):
        scenario = get_scenario("launch-day")
        specs = [catalog[g] for g in scenario.config.games]
        a = ScenarioArrivals(scenario, specs)
        b = ScenarioArrivals(scenario, specs)
        assert len(a.requests) > 0
        assert [
            (r.arrival, r.request_id, r.script, r.player.player_id)
            for r in a.requests
        ] == [
            (r.arrival, r.request_id, r.script, r.player.player_id)
            for r in b.requests
        ]

    def test_scenario_tracks_envelope(self, catalog):
        scenario = get_scenario("launch-day")
        specs = [catalog[g] for g in scenario.config.games]
        arrivals = ScenarioArrivals(scenario, specs)
        quiet = len(arrivals.due(0.0, 120.0))
        spike = len(arrivals.due(120.0, 240.0))
        assert spike > quiet  # the flash crowd is visible in the stream

    def test_mix_behaviours_appear(self, catalog):
        scenario = get_scenario("raid-night")
        specs = [catalog[g] for g in scenario.config.games]
        arrivals = ScenarioArrivals(scenario, specs)
        seen = {behaviour_of(r.player) for r in arrivals.requests}
        assert "raider" in seen

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_shipped_corpus_replays_digest_stable(self, name):
        path = Path(__file__).resolve().parents[1] / "corpus" / f"{name}.cgtrace"
        assert path.is_file(), f"shipped corpus trace missing: {path}"
        report = replay_path(path)
        assert report.matched
        assert report.divergence == ""


# ---------------------------------------------------------------------------
# Satellite: ClusterScheduler.node() diagnostics
# ---------------------------------------------------------------------------

class TestNodeLookupDiagnostics:
    def _cluster(self, contra_profile):
        from repro.baselines import CoCGStrategy

        profiles = {"contra": contra_profile}
        nodes = [
            FleetNode(f"node-{i}", CoCGStrategy(), profiles, seed=i)
            for i in range(2)
        ]
        return ClusterScheduler(nodes, policy="round-robin"), profiles

    def test_lookup_miss_lists_sorted_states(self, contra_profile):
        cluster, _ = self._cluster(contra_profile)
        with pytest.raises(KeyError) as info:
            cluster.node("node-9")
        message = str(info.value)
        assert "node-0=up" in message and "node-1=up" in message
        assert message.index("node-0") < message.index("node-1")

    def test_lookup_miss_includes_provisioning_requests(
        self, contra_profile
    ):
        from repro.baselines import CoCGStrategy

        from repro.sim.engine import SimulationEngine

        cluster, profiles = self._cluster(contra_profile)
        provisioner = Provisioner(
            cluster,
            lambda node_id: FleetNode(
                node_id, CoCGStrategy(), profiles, seed=0
            ),
        )
        provisioner.attach(SimulationEngine())
        pending = provisioner.request_node(0.0)
        assert pending is not None
        with pytest.raises(KeyError) as info:
            cluster.node("node-9")
        assert f"{pending}=provisioning" in str(info.value)

    def test_lookup_hit_still_works(self, contra_profile):
        cluster, _ = self._cluster(contra_profile)
        assert cluster.node("node-1").node_id == "node-1"


# ---------------------------------------------------------------------------
# Sharded corpus replay: the diurnal wave through the session router
# ---------------------------------------------------------------------------

class TestShardedScenarioReplay:
    """The corpus meets the fleet-of-fleets: one scenario stream split
    across regional shards must record per-region sub-traces that each
    replay clean, and the merged cross-shard digest must agree between
    the live runs and the replays."""

    def test_diurnal_wave_sharded_digest_parity(self, catalog):
        import hashlib
        from dataclasses import replace

        from repro.fleet import SessionRouter
        from repro.trace import build_profiles

        spec = get_scenario("diurnal-wave")
        specs = [catalog[g] for g in spec.config.games]
        stream = ScenarioArrivals(spec, specs)
        router = SessionRouter({"east": 1.0, "west": 1.0})
        slices = router.split(stream.requests)
        assert all(slices[name].requests for name in slices)
        profiles = build_profiles(spec.config, catalog)
        live = {}
        replayed = {}
        for name in sorted(slices):
            config = replace(spec.config, region=name)
            result, recorder = record_run(
                config,
                scenario=f"{spec.name}/{name}",
                arrivals=slices[name],
                profiles=profiles,
            )
            live[name] = result.telemetry_digest
            report = replay_document(recorder.document)
            assert report.matched, f"region {name} diverged on replay"
            replayed[name] = report.replayed_digest

        def merged(digests):
            acc = hashlib.sha256()
            for region in sorted(digests):
                acc.update(f"{region}:{digests[region]}\n".encode())
            return acc.hexdigest()

        assert live["east"] != live["west"]  # regions are byte-distinct
        assert merged(live) == merged(replayed)
