"""Tests for the CoCG scheduler's online control loop."""

import numpy as np
import pytest

from repro.core.scheduler import CoCGConfig, CoCGScheduler
from repro.core.regulator import RegulatorConfig
from repro.games.session import GameSession
from repro.platform_.allocator import Allocator
from repro.platform_.resources import ResourceVector
from repro.platform_.server import GPUDevice, Server
from repro.sim.telemetry import TelemetryRecorder


def make_scheduler(cap=0.95, **config_kwargs):
    server = Server("s", gpus=[GPUDevice()])
    allocator = Allocator(server, utilization_cap=cap)
    return CoCGScheduler(allocator, config=CoCGConfig(**config_kwargs))


def drive(scheduler, sessions, telemetry, seconds, start=0):
    """Advance sessions under the scheduler for a stretch of seconds."""
    for t in range(start, start + seconds):
        for session in list(sessions):
            if session.finished:
                continue
            alloc = scheduler.allocation_of(session.session_id)
            tick = session.advance(alloc)
            telemetry.record(t, session.session_id, tick.demand, alloc)
        if (t + 1) % 5 == 0:
            scheduler.control(t + 1, telemetry)
    return start + seconds


class TestAdmission:
    def test_admit_and_place(self, toy_spec, toy_profile):
        sched = make_scheduler()
        s = GameSession(toy_spec, "full", seed=0)
        decision = sched.try_admit(s, toy_profile, time=0)
        assert decision.admitted
        assert s.session_id in sched.sessions
        assert sched.allocation_of(s.session_id).is_nonnegative()

    def test_release(self, toy_spec, toy_profile):
        sched = make_scheduler()
        s = GameSession(toy_spec, "full", seed=0)
        sched.try_admit(s, toy_profile, time=0)
        sched.release(s.session_id, time=1)
        assert s.session_id not in sched.sessions

    def test_reject_when_full(self, toy_spec, toy_profile):
        sched = make_scheduler()
        admitted = 0
        for i in range(12):
            s = GameSession(toy_spec, "full", seed=i)
            if sched.try_admit(s, toy_profile, time=0).admitted:
                admitted += 1
        assert 1 <= admitted < 12
        assert sched.rejections > 0


class TestControlLoop:
    def test_tracks_stage_transitions(self, toy_spec, toy_profile):
        sched = make_scheduler()
        telemetry = TelemetryRecorder(noise_std=0.5, seed=0)
        s = GameSession(toy_spec, "full", seed=3)
        sched.try_admit(s, toy_profile, time=0)
        drive(sched, [s], telemetry, 60)
        ctl = sched.sessions[s.session_id]
        # After a minute the session is in its quiet stage and the
        # scheduler believes an execution type.
        assert ctl.phase == "execution"
        assert ctl.believed is not None

    def test_allocation_follows_stage(self, toy_spec, toy_profile):
        """The granted ceiling during the quiet stage must sit well below
        the heavy-stage plan (the whole point of stage awareness)."""
        sched = make_scheduler()
        telemetry = TelemetryRecorder(noise_std=0.5, seed=0)
        s = GameSession(toy_spec, "full", seed=3)
        sched.try_admit(s, toy_profile, time=0)
        quiet_allocs, heavy_allocs = [], []
        t = 0
        while not s.finished:
            alloc = sched.allocation_of(s.session_id)
            tick = s.advance(alloc)
            telemetry.record(t, s.session_id, tick.demand, alloc)
            if tick.stage_name == "quiet":
                quiet_allocs.append(alloc.gpu)
            elif tick.stage_name == "heavy":
                heavy_allocs.append(alloc.gpu)
            t += 1
            if t % 5 == 0:
                sched.control(t, telemetry)
        assert np.mean(quiet_allocs) < np.mean(heavy_allocs)

    def test_never_exceeds_cap(self, toy_spec, toy_profile):
        sched = make_scheduler()
        telemetry = TelemetryRecorder(noise_std=0.5, seed=1)
        sessions = []
        for i in range(3):
            s = GameSession(toy_spec, "full", seed=10 + i)
            if sched.try_admit(s, toy_profile, time=0).admitted:
                sessions.append(s)
        assert len(sessions) >= 2
        server = sched.allocator.server
        for t in range(120):
            for s in sessions:
                if s.finished:
                    continue
                alloc = sched.allocation_of(s.session_id)
                tick = s.advance(alloc)
                telemetry.record(t, s.session_id, tick.demand, alloc)
            if (t + 1) % 5 == 0:
                sched.control(t + 1, telemetry)
            host = server.allocated_host()
            dev = server.allocated_gpu(0)
            assert host[0] <= 95 + 1e-6
            assert dev[0] <= 95 + 1e-6

    def test_prediction_preallocates_next_stage(self, toy_spec, toy_profile):
        """Entering the mid-loading stage must trigger a prediction for
        the heavy stage (the §IV-B pipeline)."""
        sched = make_scheduler()
        telemetry = TelemetryRecorder(noise_std=0.5, seed=2)
        s = GameSession(toy_spec, "full", seed=5)
        sched.try_admit(s, toy_profile, time=0)
        saw_loading_with_prediction = False
        t = 0
        while not s.finished and t < 400:
            alloc = sched.allocation_of(s.session_id)
            tick = s.advance(alloc)
            telemetry.record(t, s.session_id, tick.demand, alloc)
            t += 1
            if t % 5 == 0:
                sched.control(t, telemetry)
                ctl = sched.sessions[s.session_id]
                if (
                    ctl.phase == "loading"
                    and tick.stage_name == "mid"
                    and ctl.predicted is not None
                ):
                    saw_loading_with_prediction = True
        assert saw_loading_with_prediction

    def test_regulator_disabled_config(self, toy_spec, toy_profile):
        sched = make_scheduler(regulator=RegulatorConfig(enabled=False))
        telemetry = TelemetryRecorder(noise_std=0.5, seed=3)
        s = GameSession(toy_spec, "full", seed=6)
        sched.try_admit(s, toy_profile, time=0)
        drive(sched, [s], telemetry, 100)
        assert sched.regulator.holds_started == 0


class TestSessionControlView:
    def test_predicted_peaks_nonempty(self, toy_spec, toy_profile):
        sched = make_scheduler()
        s = GameSession(toy_spec, "full", seed=0)
        sched.try_admit(s, toy_profile, time=0)
        ctl = sched.sessions[s.session_id]
        peaks = ctl.predicted_peaks(3)
        assert 1 <= len(peaks) <= 3
        for p in peaks:
            assert p.is_nonnegative()

    def test_min_allocation_compressible_while_loading(self, toy_spec, toy_profile):
        sched = make_scheduler()
        s = GameSession(toy_spec, "full", seed=0)
        sched.try_admit(s, toy_profile, time=0)
        ctl = sched.sessions[s.session_id]
        assert ctl.phase == "loading"
        assert ctl.min_allocation().cpu < ctl.desired.cpu

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CoCGConfig(detect_interval=0)
