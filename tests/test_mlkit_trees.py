"""Tests for the CART classifier and regressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mlkit.base import NotFittedError
from repro.mlkit.regression_tree import DecisionTreeRegressor
from repro.mlkit.tree import DecisionTreeClassifier


def xor_data(rng, n=400, noise=0.0):
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    if noise:
        flip = rng.random(n) < noise
        y = np.where(flip, 1 - y, y)
    return X, y


class TestClassifierBasics:
    def test_fits_xor_perfectly(self, rng):
        # XOR has zero first-split gain, so greedy CART needs slack depth.
        X, y = xor_data(rng)
        tree = DecisionTreeClassifier(max_depth=8).fit(X, y)
        assert tree.score(X, y) == 1.0

    def test_generalises_on_xor(self, rng):
        X, y = xor_data(rng)
        tree = DecisionTreeClassifier(max_depth=8).fit(X[:300], y[:300])
        assert tree.score(X[300:], y[300:]) > 0.9

    def test_depth_limit_respected(self, rng):
        X, y = xor_data(rng)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth <= 2

    def test_min_samples_leaf(self, rng):
        X, y = xor_data(rng, n=64)
        tree = DecisionTreeClassifier(min_samples_leaf=16).fit(X, y)
        # No leaf can contain fewer than 16 samples → at most 4 leaves.
        assert tree.n_leaves <= 4

    def test_single_class_gives_stump(self):
        X = np.random.default_rng(0).normal(size=(20, 3))
        tree = DecisionTreeClassifier().fit(X, np.ones(20))
        assert tree.depth == 0
        assert np.all(tree.predict(X) == 1)

    def test_predict_proba_rows_sum_to_one(self, rng):
        X, y = xor_data(rng, noise=0.1)
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        p = tree.predict_proba(X)
        np.testing.assert_allclose(p.sum(axis=1), 1.0)
        assert np.all(p >= 0)

    def test_string_labels_roundtrip(self, rng):
        X = rng.normal(size=(40, 2))
        y = np.where(X[:, 0] > 0, "hot", "cold")
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert set(tree.predict(X)) <= {"hot", "cold"}
        assert tree.score(X, y) == 1.0

    def test_entropy_criterion(self, rng):
        X, y = xor_data(rng)
        tree = DecisionTreeClassifier(max_depth=8, criterion="entropy").fit(X, y)
        assert tree.score(X, y) == 1.0

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_feature_count_mismatch(self, rng):
        X, y = xor_data(rng, n=50)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((2, 3)))

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(criterion="mse")

    def test_rejects_nan_inputs(self):
        X = np.zeros((4, 2))
        X[1, 1] = np.nan
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(X, [0, 1, 0, 1])

    def test_label_length_mismatch(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((3, 2)), [0, 1])


class TestRegressorBasics:
    def test_fits_step_function(self, rng):
        X = rng.uniform(-1, 1, size=(300, 1))
        y = np.where(X[:, 0] > 0.3, 5.0, -2.0)
        reg = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert reg.score(X, y) > 0.999

    def test_piecewise_smooth_approximation(self, rng):
        X = rng.uniform(0, 2 * np.pi, size=(600, 1))
        y = np.sin(X[:, 0])
        reg = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert reg.score(X, y) > 0.95

    def test_depth_zero_predicts_mean(self, rng):
        X = rng.normal(size=(50, 2))
        y = rng.normal(size=50)
        reg = DecisionTreeRegressor(max_depth=1, min_samples_split=200).fit(X, y)
        np.testing.assert_allclose(reg.predict(X), y.mean(), atol=1e-9)

    def test_constant_target(self, rng):
        X = rng.normal(size=(30, 2))
        reg = DecisionTreeRegressor().fit(X, np.full(30, 3.5))
        np.testing.assert_allclose(reg.predict(X), 3.5)
        assert reg.score(X, np.full(30, 3.5)) == 1.0

    def test_rejects_nan_target(self, rng):
        X = rng.normal(size=(4, 2))
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(X, [0.0, np.nan, 1.0, 2.0])

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), depth=st.integers(1, 6))
def test_classifier_training_accuracy_monotone_in_depth(seed, depth):
    """Property: deeper trees never fit the training set worse."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(80, 3))
    y = (X[:, 0] + X[:, 1] ** 2 > 0.3).astype(int)
    shallow = DecisionTreeClassifier(max_depth=depth).fit(X, y).score(X, y)
    deeper = DecisionTreeClassifier(max_depth=depth + 2).fit(X, y).score(X, y)
    assert deeper >= shallow - 1e-12


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_regressor_predictions_within_target_range(seed):
    """Property: leaf means can never leave the observed target range."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(60, 2))
    y = rng.uniform(-3, 7, size=60)
    reg = DecisionTreeRegressor(max_depth=4).fit(X, y)
    pred = reg.predict(rng.normal(size=(40, 2)))
    assert pred.min() >= y.min() - 1e-9
    assert pred.max() <= y.max() + 1e-9
