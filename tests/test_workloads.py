"""Tests for request streams, Eq-2 throughput, and the experiment driver."""

import numpy as np
import pytest

from repro.baselines import CoCGStrategy, MaxStaticStrategy
from repro.workloads.experiment import ColocationExperiment
from repro.workloads.metrics import throughput_eq2
from repro.workloads.requests import ContinuousBacklog, PoissonArrivals


class TestThroughputEq2:
    def test_formula(self):
        t = throughput_eq2({"a": 3, "b": 2}, {"a": 100.0, "b": 50.0})
        assert t == 400.0

    def test_missing_duration(self):
        with pytest.raises(KeyError):
            throughput_eq2({"a": 1}, {})

    def test_negative_count(self):
        with pytest.raises(ValueError):
            throughput_eq2({"a": -1}, {"a": 1.0})

    def test_empty_is_zero(self):
        assert throughput_eq2({}, {}) == 0.0


class TestContinuousBacklog:
    def test_always_one_pending_per_game(self, toy_spec, catalog):
        backlog = ContinuousBacklog([toy_spec, catalog["contra"]], seed=0)
        pending = backlog.pending(0.0)
        assert {r.spec.name for r in pending} == {"toygame", "contra"}

    def test_started_consumes_slot(self, toy_spec):
        backlog = ContinuousBacklog([toy_spec], seed=0)
        (req,) = backlog.pending(0.0)
        backlog.started(req)
        assert backlog.pending(1.0) == []

    def test_finished_reopens_slot(self, toy_spec):
        backlog = ContinuousBacklog([toy_spec], seed=0)
        (req,) = backlog.pending(0.0)
        backlog.started(req)
        backlog.finished("toygame")
        assert len(backlog.pending(2.0)) == 1

    def test_finish_without_running_raises(self, toy_spec):
        with pytest.raises(RuntimeError):
            ContinuousBacklog([toy_spec]).finished("toygame")

    def test_max_concurrent(self, toy_spec):
        backlog = ContinuousBacklog([toy_spec], seed=0, max_concurrent=3)
        assert len(backlog.pending(0.0)) == 3

    def test_script_choice_is_seeded(self, catalog):
        a = ContinuousBacklog([catalog["contra"]], seed=4).pending(0.0)[0]
        b = ContinuousBacklog([catalog["contra"]], seed=4).pending(0.0)[0]
        assert a.script == b.script

    def test_request_builds_session(self, toy_spec):
        backlog = ContinuousBacklog([toy_spec], seed=0)
        (req,) = backlog.pending(0.0)
        session = req.make_session(7)
        assert session.spec is toy_spec
        assert session.script.name == req.script


class TestPoissonArrivals:
    def test_rate_roughly_respected(self, toy_spec):
        arr = PoissonArrivals([toy_spec], rate_per_minute=2.0, seed=0, horizon=3600)
        assert 80 <= len(arr.requests) <= 160  # 2/min over 60 min ± slack

    def test_due_window(self, toy_spec):
        arr = PoissonArrivals([toy_spec], rate_per_minute=2.0, seed=0, horizon=600)
        first = arr.due(0, 300)
        second = arr.due(300, 600)
        assert len(first) + len(second) == len(arr.requests)

    def test_arrival_times_sorted(self, toy_spec):
        arr = PoissonArrivals([toy_spec], seed=1, horizon=1000)
        times = [r.arrival for r in arr.requests]
        assert times == sorted(times)

    def test_invalid_rate(self, toy_spec):
        with pytest.raises(ValueError):
            PoissonArrivals([toy_spec], rate_per_minute=0)


class TestColocationExperiment:
    def test_short_run_completes(self, toy_profile):
        profiles = {"toygame": toy_profile}
        result = ColocationExperiment(
            profiles, CoCGStrategy(), horizon=600, seed=0
        ).run()
        assert result.completed_runs["toygame"] >= 2
        assert result.throughput > 0
        assert result.horizon == 600
        assert result.total_usage.shape == (600, 4)

    def test_usage_never_exceeds_cap(self, toy_profile):
        profiles = {"toygame": toy_profile}
        result = ColocationExperiment(
            profiles, CoCGStrategy(), horizon=600, seed=1, max_concurrent=3
        ).run()
        assert result.over_cap_seconds == 0
        assert np.all(result.peak_total_usage <= 95 + 1e-6)

    def test_same_seed_same_outcome(self, toy_profile):
        profiles = {"toygame": toy_profile}
        a = ColocationExperiment(profiles, MaxStaticStrategy(), horizon=400, seed=9).run()
        b = ColocationExperiment(profiles, MaxStaticStrategy(), horizon=400, seed=9).run()
        assert a.completed_runs == b.completed_runs
        np.testing.assert_array_equal(a.total_usage, b.total_usage)

    def test_colocation_counted(self, toy_profile):
        profiles = {"toygame": toy_profile}
        result = ColocationExperiment(
            profiles, CoCGStrategy(), horizon=600, seed=2, max_concurrent=2
        ).run()
        assert result.colocated_seconds > 0

    def test_qos_aggregates_present(self, toy_profile):
        profiles = {"toygame": toy_profile}
        result = ColocationExperiment(
            profiles, CoCGStrategy(), horizon=400, seed=3
        ).run()
        assert 0 <= result.fraction_of_best["toygame"] <= 1
        assert 0 <= result.violation_fraction["toygame"] <= 1

    def test_invalid_horizon(self, toy_profile):
        with pytest.raises(ValueError):
            ColocationExperiment({"toygame": toy_profile}, CoCGStrategy(), horizon=0)
