"""Tests for the ``repro.lint`` invariant checker (rules CG001–CG009, CG014)."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Finding,
    UnknownRuleError,
    all_rules,
    lint_paths,
    render_json,
    render_text,
    resolve_rules,
)
from repro.lint.__main__ import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_source(tmp_path, rel, source, *, select=None, ignore=None):
    """Write ``source`` at ``tmp_path/rel`` and lint the tree."""
    file = tmp_path / rel
    file.parent.mkdir(parents=True, exist_ok=True)
    file.write_text(textwrap.dedent(source))
    return lint_paths([tmp_path], select=select, ignore=ignore)


def rule_ids(result):
    return [f.rule_id for f in result.findings]


# ----------------------------------------------------------------------
# CG001 — no global randomness
# ----------------------------------------------------------------------

class TestCG001:
    def test_flags_np_random_call(self, tmp_path):
        result = lint_source(tmp_path, "games/gen.py", """\
            import numpy as np

            def roll():
                return np.random.uniform(0, 1)
            """, select=["CG001"])
        assert rule_ids(result) == ["CG001"]
        assert result.findings[0].line == 4

    def test_flags_stdlib_random_call_and_import(self, tmp_path):
        result = lint_source(tmp_path, "games/gen.py", """\
            import random
            from random import randint

            def roll():
                return random.random()
            """, select=["CG001"])
        assert rule_ids(result) == ["CG001", "CG001"]

    def test_allows_seeded_constructors_and_rng_module(self, tmp_path):
        # default_rng / Generator construction is deterministic; and the
        # rule never applies inside util/rng.py itself.
        clean = lint_source(tmp_path, "games/gen.py", """\
            import numpy as np

            def make(seed):
                rng = np.random.default_rng(seed)
                return rng.uniform(0, 1)
            """, select=["CG001"])
        assert clean.ok
        exempt = lint_source(tmp_path, "util/rng.py", """\
            import numpy as np

            def helper():
                return np.random.rand(3)
            """, select=["CG001"])
        assert exempt.ok

    def test_flags_numpy_random_alias(self, tmp_path):
        result = lint_source(tmp_path, "games/gen.py", """\
            import numpy.random as npr

            def roll():
                return npr.shuffle([1, 2])
            """, select=["CG001"])
        assert rule_ids(result) == ["CG001"]


# ----------------------------------------------------------------------
# CG002 — no mutable defaults
# ----------------------------------------------------------------------

class TestCG002:
    def test_flags_mutable_defaults(self, tmp_path):
        result = lint_source(tmp_path, "mod.py", """\
            def f(xs=[], mapping={}, tags=set(), q=dict()):
                return xs, mapping, tags, q
            """, select=["CG002"])
        assert rule_ids(result) == ["CG002"] * 4

    def test_flags_kwonly_and_lambda(self, tmp_path):
        result = lint_source(tmp_path, "mod.py", """\
            def f(*, xs=[]):
                return xs

            g = lambda acc=[]: acc
            """, select=["CG002"])
        assert len(result.findings) == 2

    def test_allows_immutable_defaults(self, tmp_path):
        result = lint_source(tmp_path, "mod.py", """\
            def f(xs=None, pair=(), name="x", n=0):
                return xs, pair, name, n
            """, select=["CG002"])
        assert result.ok


# ----------------------------------------------------------------------
# CG003 — public functions typed in core/mlkit/platform_
# ----------------------------------------------------------------------

class TestCG003:
    BAD = """\
        class Thing:
            def compute(self, x):
                return x

        def helper(y):
            return y
        """

    def test_flags_unannotated_public_api(self, tmp_path):
        result = lint_source(tmp_path, "core/mod.py", self.BAD, select=["CG003"])
        # compute: params + return; helper: params + return.
        assert rule_ids(result) == ["CG003"] * 4

    def test_out_of_scope_package_is_ignored(self, tmp_path):
        result = lint_source(tmp_path, "games/mod.py", self.BAD, select=["CG003"])
        assert result.ok

    def test_annotated_and_private_pass(self, tmp_path):
        result = lint_source(tmp_path, "mlkit/mod.py", """\
            class Model:
                def fit(self, X: list) -> "Model":
                    return self

                def _impl(self, X):
                    return X

            def _private(y):
                return y
            """, select=["CG003"])
        assert result.ok

    def test_init_requires_param_annotations_only(self, tmp_path):
        result = lint_source(tmp_path, "platform_/mod.py", """\
            class Box:
                def __init__(self, size):
                    self.size = size
            """, select=["CG003"])
        assert rule_ids(result) == ["CG003"]
        assert "unannotated parameter" in result.findings[0].message


# ----------------------------------------------------------------------
# CG004 — __all__ consistency
# ----------------------------------------------------------------------

class TestCG004:
    def test_flags_nonexistent_export_and_missing_def(self, tmp_path):
        result = lint_source(tmp_path, "mod.py", """\
            __all__ = ["ghost"]

            def visible():
                return 1
            """, select=["CG004"])
        messages = sorted(f.message for f in result.findings)
        assert len(messages) == 2
        assert "'ghost' which is not defined" in messages[0]
        assert "'visible' missing from __all__" in messages[1]

    def test_flags_module_without_dunder_all(self, tmp_path):
        result = lint_source(tmp_path, "mod.py", """\
            def visible():
                return 1
            """, select=["CG004"])
        assert rule_ids(result) == ["CG004"]

    def test_consistent_module_passes(self, tmp_path):
        result = lint_source(tmp_path, "mod.py", """\
            __all__ = ["visible", "CONST"]

            CONST = 3

            def visible():
                return _hidden()

            def _hidden():
                return 1

            __all__.append("Late")

            class Late:
                pass
            """, select=["CG004"])
        assert result.ok

    def test_dynamic_dunder_all_is_skipped(self, tmp_path):
        result = lint_source(tmp_path, "mod.py", """\
            _names = ["a", "b"]
            __all__ = list(_names)

            def visible():
                return 1
            """, select=["CG004"])
        assert result.ok


# ----------------------------------------------------------------------
# CG005 — no wall clock in sim/
# ----------------------------------------------------------------------

class TestCG005:
    def test_flags_wall_clock_in_sim(self, tmp_path):
        result = lint_source(tmp_path, "sim/mod.py", """\
            import time
            from datetime import datetime

            def stamp():
                return time.time(), datetime.now()
            """, select=["CG005"])
        assert rule_ids(result) == ["CG005"] * 2

    def test_flags_from_time_import(self, tmp_path):
        result = lint_source(tmp_path, "sim/mod.py", """\
            from time import perf_counter
            """, select=["CG005"])
        assert rule_ids(result) == ["CG005"]

    def test_wall_clock_outside_sim_allowed(self, tmp_path):
        result = lint_source(tmp_path, "workloads/mod.py", """\
            import time

            def stamp():
                return time.time()
            """, select=["CG005"])
        assert result.ok

    def test_engine_clock_calls_pass(self, tmp_path):
        result = lint_source(tmp_path, "sim/mod.py", """\
            def advance(engine):
                return engine.clock.time()
            """, select=["CG005"])
        assert result.ok


# ----------------------------------------------------------------------
# CG006 — exception hygiene
# ----------------------------------------------------------------------

class TestCG006:
    def test_flags_bare_except_anywhere(self, tmp_path):
        result = lint_source(tmp_path, "analysis/mod.py", """\
            def f():
                try:
                    return 1
                except:
                    return 0
            """, select=["CG006"])
        assert rule_ids(result) == ["CG006"]

    def test_flags_swallowed_exception_on_scheduler_path(self, tmp_path):
        result = lint_source(tmp_path, "core/scheduler.py", """\
            def f():
                try:
                    return 1
                except Exception:
                    pass
            """, select=["CG006"])
        assert rule_ids(result) == ["CG006"]
        assert "swallowed" in result.findings[0].message

    def test_swallow_outside_control_path_allowed(self, tmp_path):
        result = lint_source(tmp_path, "analysis/mod.py", """\
            def f():
                try:
                    return 1
                except Exception:
                    pass
            """, select=["CG006"])
        assert result.ok

    def test_handled_exception_passes(self, tmp_path):
        result = lint_source(tmp_path, "core/distributor.py", """\
            def f(log):
                try:
                    return 1
                except Exception as exc:
                    log.warning("placement failed: %s", exc)
                    raise
            """, select=["CG006"])
        assert result.ok


# ----------------------------------------------------------------------
# CG007 — canonical dimension constants
# ----------------------------------------------------------------------

class TestCG007:
    def test_flags_ad_hoc_dimension_strings(self, tmp_path):
        result = lint_source(tmp_path, "workloads/mod.py", """\
            def f(vec, dim):
                usage = vec["gpu"]
                if dim == "cpu":
                    usage += 1
                order = ("cpu", "gpu", "gpu_mem", "ram")
                return usage, order
            """, select=["CG007"])
        assert rule_ids(result) == ["CG007"] * 3

    def test_resources_module_is_exempt(self, tmp_path):
        result = lint_source(tmp_path, "platform_/resources.py", """\
            DIMENSIONS = ("cpu", "gpu", "gpu_mem", "ram")
            """, select=["CG007"])
        assert result.ok

    def test_keyword_and_mapping_construction_pass(self, tmp_path):
        result = lint_source(tmp_path, "workloads/mod.py", """\
            def f(make):
                vec = make(cpu=35.0, gpu=60.0)
                by_name = {"cpu": 35.0, "gpu": 60.0}
                return vec, by_name
            """, select=["CG007"])
        assert result.ok


# ----------------------------------------------------------------------
# CG008 — fault-path accountability
# ----------------------------------------------------------------------

class TestCG008:
    def test_flags_silent_substitution_on_fault_path(self, tmp_path):
        result = lint_source(tmp_path, "cluster/fleet.py", """\
            def f(node):
                try:
                    return node.place()
                except Exception:
                    return None
            """, select=["CG008"])
        assert rule_ids(result) == ["CG008"]

    def test_reraise_accounts(self, tmp_path):
        result = lint_source(tmp_path, "faults/injector.py", """\
            def f(node):
                try:
                    return node.place()
                except Exception:
                    raise
            """, select=["CG008"])
        assert result.ok

    def test_telemetry_log_accounts(self, tmp_path):
        result = lint_source(tmp_path, "core/scheduler.py", """\
            def f(node, telemetry):
                try:
                    return node.place()
                except Exception as exc:
                    telemetry.record_fault_event(0.0, "err", repr(exc))
                    return None
            """, select=["CG008"])
        assert result.ok

    def test_health_transition_accounts(self, tmp_path):
        result = lint_source(tmp_path, "cluster/fleet.py", """\
            def f(node, down):
                try:
                    return node.place()
                except Exception:
                    node.health = down
                    return None
            """, select=["CG008"])
        assert result.ok

    def test_narrow_handlers_are_out_of_scope(self, tmp_path):
        result = lint_source(tmp_path, "cluster/fleet.py", """\
            def f(node):
                try:
                    return node.place()
                except KeyError:
                    return None
            """, select=["CG008"])
        assert result.ok

    def test_other_packages_are_out_of_scope(self, tmp_path):
        result = lint_source(tmp_path, "analysis/mod.py", """\
            def f(node):
                try:
                    return node.place()
                except Exception:
                    return None
            """, select=["CG008"])
        assert result.ok


# ----------------------------------------------------------------------
# CG009 — bounded queues on the serving path
# ----------------------------------------------------------------------

class TestCG009:
    def test_flags_deque_without_maxlen(self, tmp_path):
        result = lint_source(tmp_path, "serve/gateway.py", """\
            from collections import deque

            def build():
                return deque()
            """, select=["CG009"])
        assert rule_ids(result) == ["CG009"]

    def test_flags_aliased_and_dotted_deque(self, tmp_path):
        result = lint_source(tmp_path, "cluster/fleet.py", """\
            import collections
            from collections import deque as dq

            def build():
                return dq(), collections.deque([1, 2])
            """, select=["CG009"])
        assert rule_ids(result) == ["CG009", "CG009"]

    def test_deque_with_maxlen_is_clean(self, tmp_path):
        result = lint_source(tmp_path, "serve/gateway.py", """\
            from collections import deque

            def build(capacity):
                return deque(maxlen=capacity)
            """, select=["CG009"])
        assert result.ok

    def test_flags_queue_named_empty_list(self, tmp_path):
        result = lint_source(tmp_path, "cluster/fleet.py", """\
            class C:
                def __init__(self):
                    self._queue = []
                    self.backlog = list()
            """, select=["CG009"])
        assert rule_ids(result) == ["CG009", "CG009"]

    def test_flags_annotated_queue_list(self, tmp_path):
        result = lint_source(tmp_path, "serve/gateway.py", """\
            class C:
                def __init__(self):
                    self.retry_queue: list = []
            """, select=["CG009"])
        assert rule_ids(result) == ["CG009"]

    def test_non_queue_names_and_nonempty_lists_are_clean(self, tmp_path):
        result = lint_source(tmp_path, "serve/slo.py", """\
            class C:
                def __init__(self):
                    self.samples = []
                    self.queue_limits = [1, 2, 3]
            """, select=["CG009"])
        assert result.ok

    def test_pragma_names_the_external_bound(self, tmp_path):
        result = lint_source(tmp_path, "cluster/fleet.py", """\
            class C:
                def __init__(self):
                    self._queue = []  # lint: disable=CG009 - bounded in submit()
            """, select=["CG009"])
        assert result.ok

    def test_other_packages_are_out_of_scope(self, tmp_path):
        result = lint_source(tmp_path, "workloads/requests.py", """\
            from collections import deque

            def build():
                queue = []
                return deque(), queue
            """, select=["CG009"])
        assert result.ok


# ----------------------------------------------------------------------
# CG014 — registry-backed aggregates
# ----------------------------------------------------------------------

class TestCG014:
    def test_flags_module_level_counter_dicts(self, tmp_path):
        result = lint_source(tmp_path, "serve/stats.py", """\
            from collections import Counter, defaultdict

            _totals = {}
            REQUEST_COUNTER = Counter()
            stats_by_node = defaultdict(int)
            """, select=["CG014"])
        assert rule_ids(result) == ["CG014", "CG014", "CG014"]

    def test_flags_annotated_and_comprehension_aggregates(self, tmp_path):
        result = lint_source(tmp_path, "cluster/tally.py", """\
            SHED_TOTAL: dict = dict()
            fault_tally = {k: 0 for k in ("crash", "drain")}
            """, select=["CG014"])
        assert rule_ids(result) == ["CG014", "CG014"]

    def test_class_and_function_scoped_state_is_clean(self, tmp_path):
        result = lint_source(tmp_path, "faults/log.py", """\
            class Injector:
                _totals = {}

                def __init__(self):
                    self.counters = {}

            def tally():
                totals = {}
                return totals
            """, select=["CG014"])
        assert result.ok

    def test_non_counter_names_and_immutables_are_clean(self, tmp_path):
        result = lint_source(tmp_path, "serve/config.py", """\
            _DEFAULTS = {"rate": 2.0}
            TOTAL_STAGES = 3
            COUNT_LABEL = "count"
            """, select=["CG014"])
        assert result.ok

    def test_pragma_marks_a_static_table(self, tmp_path):
        result = lint_source(tmp_path, "cluster/fleet.py", """\
            _STAT_NAMES = {"p50", "p99"}  # lint: disable=CG014 -- static table, never mutated
            """, select=["CG014"])
        assert result.ok

    def test_other_packages_are_out_of_scope(self, tmp_path):
        result = lint_source(tmp_path, "workloads/requests.py", """\
            _totals = {}
            """, select=["CG014"])
        assert result.ok


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------

class TestPragmas:
    def test_trailing_pragma_suppresses_line_only(self, tmp_path):
        result = lint_source(tmp_path, "mod.py", """\
            def f(xs=[]):  # lint: disable=CG002
                return xs

            def g(ys=[]):
                return ys
            """, select=["CG002"])
        assert len(result.findings) == 1
        assert result.findings[0].line == 4

    def test_standalone_pragma_suppresses_whole_file(self, tmp_path):
        result = lint_source(tmp_path, "mod.py", """\
            # lint: disable=CG002

            def f(xs=[]):
                return xs

            def g(ys=[]):
                return ys
            """, select=["CG002"])
        assert result.ok

    def test_pragma_does_not_suppress_other_rules(self, tmp_path):
        result = lint_source(tmp_path, "mod.py", """\
            import numpy as np

            def f(xs=[]):  # lint: disable=CG001
                return np.random.rand(), xs
            """, select=["CG001", "CG002"])
        # CG002 still fires on the def line; CG001 fires on line 4
        # (the call), outside the pragma's line.
        assert sorted(rule_ids(result)) == ["CG001", "CG002"]

    def test_bare_disable_suppresses_all_rules_on_line(self, tmp_path):
        result = lint_source(tmp_path, "mod.py", """\
            def f(xs=[], ys={}):  # lint: disable
                return xs, ys
            """, select=["CG002"])
        assert result.ok

    def test_pragma_inside_string_is_not_a_pragma(self, tmp_path):
        result = lint_source(tmp_path, "mod.py", """\
            def f(xs=[]):
                return "# lint: disable=CG002"
            """, select=["CG002"])
        assert rule_ids(result) == ["CG002"]

    def test_multi_rule_pragma_suppresses_both_on_one_line(self, tmp_path):
        # One line violating two different rules (global RNG draw and
        # a wall-clock read inside sim/): a single pragma naming both
        # rule ids silences the line entirely.
        source = """\
            import random
            import time

            def tick():
                return random.random() + time.time(){pragma}
            """
        noisy = lint_source(tmp_path / "noisy", "sim/a.py",
                            source.format(pragma=""),
                            select=["CG001", "CG005"])
        assert sorted(rule_ids(noisy)) == ["CG001", "CG005"]
        assert noisy.findings[0].line == noisy.findings[1].line == 5
        clean = lint_source(
            tmp_path / "clean", "sim/b.py",
            source.format(pragma="  # lint: disable=CG001,CG005"),
            select=["CG001", "CG005"])
        assert clean.ok

    def test_multi_rule_pragma_leaves_unnamed_rule(self, tmp_path):
        result = lint_source(tmp_path, "sim/mod.py", """\
            import random
            import time

            def tick():
                return random.random() + time.time()  # lint: disable=CG001,CG007
            """, select=["CG001", "CG005"])
        assert rule_ids(result) == ["CG005"]

    def test_file_level_pragma_names_multiple_rules(self, tmp_path):
        result = lint_source(tmp_path, "sim/mod.py", """\
            # lint: disable=CG001, CG005

            import random
            import time

            def tick():
                return random.random() + time.time()
            """, select=["CG001", "CG005"])
        assert result.ok

    def test_pragma_cannot_suppress_cg000_syntax_error(self, tmp_path):
        # The file fails to tokenize, so the pragma table is empty and
        # the parse failure is always reported — a pragma must never
        # hide a file the analyzer cannot even read.
        result = lint_source(
            tmp_path, "mod.py",
            "def broken(:  # lint: disable=CG000\n",
        )
        assert rule_ids(result) == ["CG000"]

    def test_pragma_on_parsable_line_in_broken_file_is_moot(self, tmp_path):
        # Even pragmas on *other* lines die with the tokenize failure:
        # CG000 is the only finding, never suppressed.
        result = lint_source(tmp_path, "mod.py", """\
            # lint: disable
            def broken(:
                pass
            """)
        assert rule_ids(result) == ["CG000"]


# ----------------------------------------------------------------------
# Engine, registry, reporters, CLI
# ----------------------------------------------------------------------

class TestEngine:
    def test_syntax_error_reported_as_cg000(self, tmp_path):
        result = lint_source(tmp_path, "mod.py", "def broken(:\n")
        assert rule_ids(result) == ["CG000"]
        assert "does not parse" in result.findings[0].message

    def test_findings_sorted_and_ordered(self, tmp_path):
        result = lint_source(tmp_path, "mod.py", """\
            def g(ys={}):
                return ys

            def f(xs=[]):
                return xs
            """, select=["CG002"])
        assert [f.line for f in result.findings] == [1, 4]

    def test_unknown_rule_raises(self):
        with pytest.raises(UnknownRuleError):
            resolve_rules(select=["CG999"])
        with pytest.raises(UnknownRuleError):
            resolve_rules(ignore=["bogus"])

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths(["/nonexistent/definitely/missing"])

    def test_registry_has_all_per_file_rules(self):
        assert sorted(all_rules()) == [
            "CG001", "CG002", "CG003", "CG004", "CG005", "CG006", "CG007",
            "CG008", "CG009", "CG014",
        ]


class TestReporters:
    def _result(self, tmp_path):
        return lint_source(tmp_path, "mod.py", "def f(xs=[]):\n    return xs\n",
                           select=["CG002"])

    def test_text_report_format(self, tmp_path):
        text = render_text(self._result(tmp_path))
        assert ":1:" in text and "CG002" in text
        assert text.endswith("1 finding in 1 file(s) checked")

    def test_json_report_is_machine_readable(self, tmp_path):
        payload = json.loads(render_json(self._result(tmp_path)))
        assert payload["count"] == 1
        assert payload["files_checked"] == 1
        finding = payload["findings"][0]
        assert finding["rule"] == "CG002"
        assert finding["line"] == 1

    def test_finding_format_is_grep_friendly(self):
        finding = Finding(path="a.py", line=3, col=7,
                          rule_id="CG001", message="boom")
        assert finding.format() == "a.py:3:7: CG001 boom"


class TestCLI:
    def test_main_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text("def f(xs=[]):\n    return xs\n")
        assert lint_main([str(tmp_path)]) == 1
        assert lint_main([str(tmp_path), "--select", "CG005"]) == 0
        assert lint_main([str(tmp_path), "--select", "CG999"]) == 2
        assert lint_main([str(tmp_path), "--select", ""]) == 2
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("CG001", "CG008"):
            assert rule_id in out

    def test_json_output(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text("def f(xs=[]):\n    return xs\n")
        lint_main([str(tmp_path), "--format", "json", "--select", "CG002"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1

    def test_cocg_lint_subcommand(self, tmp_path, capsys):
        from repro.cli import main as cocg_main

        bad = tmp_path / "mod.py"
        bad.write_text("def f(xs=[]):\n    return xs\n")
        assert cocg_main(["lint", str(tmp_path)]) == 1
        assert cocg_main(["lint", str(tmp_path), "--format", "json"]) == 1
        capsys.readouterr()


class TestShippedTree:
    def test_src_tree_is_clean(self):
        """The shipped source tree passes its own invariant checker."""
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={**__import__("os").environ,
                 "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert result.returncode == 0, result.stdout + result.stderr
