"""Tests for repro.util.timeseries.ResourceSeries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.timeseries import ResourceSeries


def make(values, cols=("cpu", "gpu"), period=1.0, start=0.0):
    return ResourceSeries(np.asarray(values, float), cols, period=period, start=start)


class TestConstruction:
    def test_basic(self):
        s = make([[1, 2], [3, 4]])
        assert s.n_samples == 2 and s.n_dims == 2
        assert s.duration == 2.0

    def test_column_count_mismatch(self):
        with pytest.raises(ValueError):
            ResourceSeries(np.zeros((2, 3)), ("a", "b"))

    def test_duplicate_columns(self):
        with pytest.raises(ValueError):
            ResourceSeries(np.zeros((2, 2)), ("a", "a"))

    def test_nonpositive_period(self):
        with pytest.raises(ValueError):
            make([[1, 2]], period=0)

    def test_zeros_factory(self):
        z = ResourceSeries.zeros(5, ("x", "y"), period=2.0)
        assert z.n_samples == 5 and z.values.sum() == 0 and z.period == 2.0


class TestAccessors:
    def test_column_is_view(self):
        s = make([[1, 2], [3, 4]])
        col = s.column("gpu")
        np.testing.assert_array_equal(col, [2, 4])
        assert col.base is s.values or col.base is s.values.base

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            make([[1, 2]]).column("nope")

    def test_times(self):
        s = make([[1, 2]] * 4, period=5.0, start=10.0)
        np.testing.assert_array_equal(s.times, [10, 15, 20, 25])


class TestSliceAndResample:
    def test_slice_time(self):
        s = make([[i, i] for i in range(10)])
        part = s.slice_time(3.0, 6.0)
        np.testing.assert_array_equal(part.column("cpu"), [3, 4, 5])
        assert part.start == 3.0

    def test_slice_empty(self):
        s = make([[1, 1]] * 3)
        assert len(s.slice_time(5.0, 9.0)) == 0

    def test_resample_mean_drops_partial(self):
        s = make([[i, 0] for i in range(7)])
        r = s.resample(3.0)
        assert r.n_samples == 2  # 7 // 3, trailing partial dropped
        np.testing.assert_allclose(r.column("cpu"), [1.0, 4.0])

    def test_resample_max(self):
        s = make([[1, 5], [9, 2]])
        r = s.resample(2.0, reduce="max")
        np.testing.assert_array_equal(r.values, [[9, 5]])

    def test_resample_non_multiple(self):
        with pytest.raises(ValueError):
            make([[1, 1]] * 4).resample(2.5)

    def test_resample_bad_reduce(self):
        with pytest.raises(ValueError):
            make([[1, 1]] * 4).resample(2.0, reduce="median")

    def test_select(self):
        s = make([[1, 2], [3, 4]])
        g = s.select(["gpu"])
        assert g.columns == ("gpu",)
        np.testing.assert_array_equal(g.values.ravel(), [2, 4])

    def test_concat(self):
        a = make([[1, 1]])
        b = make([[2, 2]])
        c = a.concat(b)
        assert c.n_samples == 2

    def test_concat_mismatched_columns(self):
        with pytest.raises(ValueError):
            make([[1, 1]]).concat(make([[1, 1]], cols=("x", "y")))


class TestStats:
    def test_peak_and_mean(self):
        s = make([[1, 10], [5, 2]])
        np.testing.assert_array_equal(s.peak(), [5, 10])
        np.testing.assert_array_equal(s.mean(), [3, 6])

    def test_empty_stats(self):
        s = ResourceSeries.zeros(0, ("a",))
        assert s.peak().tolist() == [0.0]
        assert s.mean().tolist() == [0.0]


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(1, 40),
    k=st.integers(1, 5),
)
def test_resample_mean_preserves_total_mass(n, k):
    """Property: sum(mean-resampled) * k == sum of the covered prefix."""
    rng = np.random.default_rng(n * 13 + k)
    values = rng.uniform(0, 100, size=(n, 2))
    s = ResourceSeries(values, ("a", "b"))
    r = s.resample(float(k))
    covered = values[: (n // k) * k]
    np.testing.assert_allclose(r.values.sum(axis=0) * k, covered.sum(axis=0))
