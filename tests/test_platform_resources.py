"""Tests for ResourceVector algebra and comparisons."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform_.resources import CPU, DIMENSIONS, GPU, ResourceVector

components = st.floats(0, 100, allow_nan=False)
vectors = st.builds(
    lambda c, g, m, r: ResourceVector(cpu=c, gpu=g, gpu_mem=m, ram=r),
    components, components, components, components,
)


class TestConstruction:
    def test_keyword_defaults(self):
        v = ResourceVector(cpu=10)
        assert v.cpu == 10 and v.gpu == 0 and v.gpu_mem == 0 and v.ram == 0

    def test_from_array(self):
        v = ResourceVector.from_array([1, 2, 3, 4])
        assert v.as_dict() == {"cpu": 1, "gpu": 2, "gpu_mem": 3, "ram": 4}

    def test_from_array_wrong_length(self):
        with pytest.raises(ValueError):
            ResourceVector.from_array([1, 2, 3])

    def test_coerce_mapping(self):
        v = ResourceVector.coerce({"cpu": 5, "gpu": 6})
        assert v.cpu == 5 and v.gpu == 6

    def test_coerce_rejects_unknown_dims(self):
        with pytest.raises(ValueError):
            ResourceVector.coerce({"vram": 5})

    def test_coerce_passthrough(self):
        v = ResourceVector(cpu=1)
        assert ResourceVector.coerce(v) is v

    def test_full_and_zeros(self):
        assert ResourceVector.full(100).array.tolist() == [100] * 4
        assert ResourceVector.zeros().array.tolist() == [0] * 4

    def test_array_is_readonly(self):
        v = ResourceVector(cpu=1)
        with pytest.raises(ValueError):
            v.array[0] = 5

    def test_getitem_by_name_and_index(self):
        v = ResourceVector(cpu=3, gpu=7)
        assert v["cpu"] == 3 and v[GPU] == 7


class TestAlgebra:
    def test_add_sub(self):
        a = ResourceVector(cpu=10, gpu=20)
        b = ResourceVector(cpu=1, gpu=2)
        assert (a + b).cpu == 11
        assert (a - b).gpu == 18

    def test_scalar_ops(self):
        v = ResourceVector(cpu=10) * 2
        assert v.cpu == 20
        assert (v / 4).cpu == 5

    def test_maximum_minimum(self):
        a = ResourceVector(cpu=10, gpu=1)
        b = ResourceVector(cpu=2, gpu=5)
        assert a.maximum(b).as_dict()["cpu"] == 10
        assert a.maximum(b).as_dict()["gpu"] == 5
        assert a.minimum(b).as_dict()["cpu"] == 2

    def test_clip(self):
        v = ResourceVector.from_array([-5, 50, 150, 0]).clip(0, 100)
        assert v.array.tolist() == [0, 50, 100, 0]

    def test_scale(self):
        v = ResourceVector(cpu=10, gpu=10).scale(ResourceVector(cpu=2, gpu=0.5, gpu_mem=1, ram=1))
        assert v.cpu == 20 and v.gpu == 5


class TestComparison:
    def test_fits_within(self):
        assert ResourceVector(cpu=10).fits_within(ResourceVector.full(10))
        assert not ResourceVector(cpu=10.1).fits_within(ResourceVector.full(10))

    def test_dominates(self):
        assert ResourceVector.full(5).dominates(ResourceVector(cpu=5))

    def test_equality_and_hash(self):
        a = ResourceVector(cpu=1.0)
        b = ResourceVector(cpu=1.0)
        assert a == b and hash(a) == hash(b)

    def test_is_nonnegative(self):
        assert ResourceVector().is_nonnegative()
        assert not ResourceVector.from_array([-1, 0, 0, 0]).is_nonnegative()

    def test_max_component(self):
        assert ResourceVector(cpu=3, gpu=9).max_component() == 9


@settings(max_examples=60, deadline=None)
@given(a=vectors, b=vectors)
def test_add_then_subtract_roundtrips(a, b):
    np.testing.assert_allclose((a + b - b).array, a.array, atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(a=vectors, b=vectors)
def test_minimum_fits_within_both(a, b):
    m = a.minimum(b)
    assert m.fits_within(a) and m.fits_within(b)


@settings(max_examples=60, deadline=None)
@given(a=vectors, b=vectors)
def test_maximum_dominates_both(a, b):
    m = a.maximum(b)
    assert m.dominates(a) and m.dominates(b)
