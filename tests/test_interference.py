"""Tests for the shared-resource interference model."""

import numpy as np
import pytest

from repro.baselines import CoCGStrategy
from repro.platform_.interference import InterferenceModel
from repro.platform_.resources import ResourceVector
from repro.workloads.experiment import ColocationExperiment


def rv(cpu=0, gpu=0, gpu_mem=0, ram=0):
    return ResourceVector(cpu=cpu, gpu=gpu, gpu_mem=gpu_mem, ram=ram)


class TestModel:
    def test_lone_session_never_slowed(self):
        m = InterferenceModel()
        slow = m.slowdowns({"a": rv(cpu=90, gpu_mem=90)})
        assert slow == {"a": 1.0}

    def test_disabled_model(self):
        m = InterferenceModel.disabled()
        slow = m.slowdowns({"a": rv(cpu=90), "b": rv(cpu=90)})
        assert slow == {"a": 1.0, "b": 1.0}

    def test_neighbour_pressure_slows(self):
        m = InterferenceModel(intensity=0.1)
        slow = m.slowdowns({"victim": rv(cpu=10), "bully": rv(cpu=90, gpu_mem=80)})
        assert slow["victim"] > 1.0

    def test_own_usage_does_not_count(self):
        """A session's own pressure must not inflate its own demand."""
        m = InterferenceModel(intensity=0.1)
        light = m.slowdowns({"v": rv(cpu=5), "b": rv(cpu=80)})["v"]
        heavy = m.slowdowns({"v": rv(cpu=95), "b": rv(cpu=80)})["v"]
        assert light == pytest.approx(heavy)

    def test_more_neighbours_more_slowdown(self):
        m = InterferenceModel(intensity=0.1, saturation=3.0)
        two = m.slowdowns({"v": rv(), "b1": rv(cpu=60)})["v"]
        three = m.slowdowns({"v": rv(), "b1": rv(cpu=60), "b2": rv(cpu=60)})["v"]
        assert three > two

    def test_saturation_caps_inflation(self):
        m = InterferenceModel(intensity=0.1, saturation=0.5)
        sessions = {f"b{i}": rv(cpu=100, gpu_mem=100) for i in range(5)}
        sessions["v"] = rv()
        assert m.slowdowns(sessions)["v"] == pytest.approx(1.1)

    def test_inflate_clips_at_100(self):
        m = InterferenceModel()
        out = m.inflate(rv(gpu=98), 1.1)
        assert out.gpu == 100.0

    def test_inflate_rejects_speedup(self):
        with pytest.raises(ValueError):
            InterferenceModel().inflate(rv(), 0.9)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            InterferenceModel(intensity=-0.1)
        with pytest.raises(ValueError):
            InterferenceModel(saturation=0)
        with pytest.raises(ValueError):
            InterferenceModel(cpu_weight=0, mem_weight=0)


class TestExperimentIntegration:
    def test_interference_lowers_qos(self, toy_profile):
        """Co-located sessions under contention must lose some FPS
        relative to the isolated substrate."""
        profiles = {"toygame": toy_profile}

        def run(interference):
            return ColocationExperiment(
                profiles,
                CoCGStrategy(),
                horizon=900,
                seed=4,
                max_concurrent=3,
                interference=interference,
            ).run()

        clean = run(None)
        noisy = run(InterferenceModel(intensity=0.3, saturation=0.8))
        assert (
            noisy.fraction_of_best["toygame"]
            < clean.fraction_of_best["toygame"]
        )

    def test_zero_intensity_matches_disabled(self, toy_profile):
        profiles = {"toygame": toy_profile}

        def run(interference):
            r = ColocationExperiment(
                profiles,
                CoCGStrategy(),
                horizon=600,
                seed=4,
                max_concurrent=2,
                interference=interference,
            ).run()
            return r.completed_runs, round(r.fraction_of_best["toygame"], 6)

        assert run(None) == run(InterferenceModel.disabled())
