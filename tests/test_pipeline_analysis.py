"""Tests for the offline GameProfile pipeline and the analysis helpers."""

import numpy as np
import pytest

from repro.analysis.elbow import elbow_analysis
from repro.analysis.report import format_series, format_table
from repro.analysis.savings import allocation_savings
from repro.core.pipeline import GameProfile
from repro.games.tracegen import generate_corpus
from repro.platform_.profile import WEAK_GPU_PLATFORM
from repro.util.timeseries import ResourceSeries


class TestGameProfile:
    def test_build_trains_requested_backends(self, toy_profile):
        assert set(toy_profile.predictors) == {"dtc"}
        assert toy_profile.accuracy("dtc") > 0.9

    def test_library_uses_published_k(self, toy_profile, toy_spec):
        assert toy_profile.library.n_clusters == len(toy_spec.clusters)

    def test_unknown_backend(self, toy_profile):
        with pytest.raises(KeyError):
            toy_profile.predictor("gbdt")

    def test_best_backend(self, genshin_profile):
        assert genshin_profile.best_backend() in genshin_profile.predictors

    def test_corpus_segments_retained(self, toy_profile):
        assert len(toy_profile.corpus_segments) == 9  # 3 players × 3 sessions

    def test_custom_corpus(self, toy_spec):
        corpus = generate_corpus(toy_spec, n_players=2, sessions_per_player=2, seed=1)
        profile = GameProfile.build(toy_spec, corpus=corpus, backends=("dtc",))
        assert len(profile.corpus_segments) == 4

    def test_platform_invariance_of_stage_structure(self, toy_spec):
        """§IV-D: migrating platforms rescales demand but preserves the
        stage count and transition structure."""
        ref = GameProfile.build(
            toy_spec, n_players=3, sessions_per_player=3, seed=5, backends=("dtc",)
        )
        weak_corpus = generate_corpus(
            toy_spec, n_players=3, sessions_per_player=3, seed=5,
            platform=WEAK_GPU_PLATFORM,
        )
        weak = GameProfile.build(toy_spec, corpus=weak_corpus, backends=("dtc",))
        assert ref.library.n_clusters == weak.library.n_clusters
        assert len(ref.library.stage_types) == len(weak.library.stage_types)
        # Only magnitudes change: the weak-GPU platform's exec peaks are
        # higher on the GPU dimension.
        ref_peak = ref.library.max_peak().gpu
        weak_peak = weak.library.max_peak().gpu
        assert weak_peak > ref_peak


class TestElbowAnalysis:
    def test_toy_elbow(self, toy_spec):
        bundles = generate_corpus(toy_spec, n_players=3, sessions_per_player=3, seed=1)
        analysis = elbow_analysis(toy_spec, bundles, seed=0)
        assert analysis.published_k == 3
        assert analysis.chosen_k == 3
        assert analysis.matches_published()
        assert len(analysis.sses) == len(analysis.k_values)
        assert analysis.normalized_sses[0] == 1.0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(
            ["game", "T"], [["dota2", 1.5], ["csgo", 22.0]], title="Fig 11"
        )
        lines = text.splitlines()
        assert lines[0] == "Fig 11"
        assert "game" in lines[1]
        assert all(len(l) <= 40 for l in lines)

    def test_format_table_row_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series_wraps(self):
        text = format_series("x", list(range(30)), per_line=10)
        assert len(text.splitlines()) == 4  # name + 3 rows

    def test_format_series_invalid(self):
        with pytest.raises(ValueError):
            format_series("x", [1], per_line=0)


class TestAllocationSavings:
    def make_series(self, allocated, demand):
        cols = ("cpu", "gpu", "gpu_mem", "ram")
        return (
            ResourceSeries(np.asarray(allocated, float), cols),
            ResourceSeries(np.asarray(demand, float), cols),
        )

    def test_savings_against_static(self):
        alloc, demand = self.make_series(
            [[10, 30, 0, 0], [10, 30, 0, 0]],
            [[8, 25, 0, 0], [9, 28, 0, 0]],
        )
        static = np.array([20, 60, 0, 0])
        s = allocation_savings(alloc, demand, static)
        assert s.savings_fraction == pytest.approx(0.5)
        assert s.coverage == 1.0

    def test_coverage_counts_undersupply(self):
        alloc, demand = self.make_series(
            [[10, 10, 0, 0], [10, 10, 0, 0]],
            [[5, 5, 0, 0], [20, 5, 0, 0]],
        )
        s = allocation_savings(alloc, demand, np.array([20, 20, 1, 1]))
        assert s.coverage == 0.5

    def test_length_mismatch(self):
        alloc, demand = self.make_series([[1, 1, 1, 1]], [[1, 1, 1, 1]])
        demand2 = ResourceSeries(
            np.zeros((2, 4)), ("cpu", "gpu", "gpu_mem", "ram")
        )
        with pytest.raises(ValueError):
            allocation_savings(alloc, demand2, np.ones(4))

    def test_bad_static_shape(self):
        alloc, demand = self.make_series([[1, 1, 1, 1]], [[1, 1, 1, 1]])
        with pytest.raises(ValueError):
            allocation_savings(alloc, demand, np.ones(3))
