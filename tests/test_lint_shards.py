"""Tests for the shard-interference analyzer: entry discovery, the
shard classification lattice, rules CG019–CG022 (positive / negative /
pragma), the ``shardplan.json`` certificate (schema, byte stability,
committed golden), the runtime ``@shard_entry`` /
``validate_shard_plan`` half, and the CG000 pragma-hygiene check.

The golden certificate lives at ``tests/data/shardplan_golden.json``
and is rendered from the committed fixture tree
``tests/data/shard_fixture/`` (the test chdirs into it so module names
are machine-independent).  Regenerate after intentionally changing the
classification or the certificate layout::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_lint_shards.py
"""

import ast
import json
import os
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    SHARD_CLASSES,
    ProjectContext,
    explain_rule,
    lint_paths,
    render_shard_plan,
    shard_analysis,
    shard_entry_points,
    summarize_module,
)
from repro.lint.__main__ import main as lint_main
from repro.lint.pragmas import parse_suppressions
from repro.lint.shards import DEFAULT_GROUP
from repro.sim.engine import ShardPlanError, validate_shard_plan
from repro.util.effects import (
    EffectError,
    is_shard_merge_point,
    shard_entry,
    shard_entry_group,
    shard_merge_point,
)

DATA = Path(__file__).parent / "data"
FIXTURE = DATA / "shard_fixture"
GOLDEN = DATA / "shardplan_golden.json"


def write_tree(tmp_path, files):
    """Materialise ``{relpath: source}`` under ``tmp_path``."""
    for rel, source in files.items():
        file = tmp_path / rel
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_text(textwrap.dedent(source))
    return tmp_path


def build_project(files):
    """A ProjectContext straight from ``{relpath: source}`` (no disk)."""
    mods = {}
    for rel, source in files.items():
        source = textwrap.dedent(source)
        summary = summarize_module(
            ast.parse(source),
            path=rel,
            rel_parts=tuple(rel.split("/")),
            suppressions=parse_suppressions(source),
        )
        mods[summary.module] = summary
    return ProjectContext(mods)


def rule_ids(result):
    return [f.rule_id for f in result.findings]


# ----------------------------------------------------------------------
# The runtime half: @shard_entry / @shard_merge_point
# ----------------------------------------------------------------------

class TestShardDecorators:
    def test_shard_entry_is_zero_cost(self):
        def fn(x):
            return x

        decorated = shard_entry("east")(fn)
        assert decorated is fn
        assert shard_entry_group(fn) == "east"

    def test_undecorated_has_no_group(self):
        def fn():
            pass

        assert shard_entry_group(fn) is None

    @pytest.mark.parametrize("bad", ["", "two words", "a.b", 7, None])
    def test_invalid_group_rejected(self, bad):
        with pytest.raises(EffectError):
            shard_entry(bad)

    def test_dashes_allowed_in_group(self):
        @shard_entry("region-east")
        def fn():
            pass

        assert shard_entry_group(fn) == "region-east"

    def test_merge_point_marker(self):
        @shard_merge_point
        def join():
            pass

        def other():
            pass

        assert is_shard_merge_point(join)
        assert not is_shard_merge_point(other)


# ----------------------------------------------------------------------
# Entry discovery and the classification lattice
# ----------------------------------------------------------------------

class TestEntryDiscovery:
    def test_conventional_terminals_under_entry_packages(self):
        project = build_project({
            "cluster/fleet.py": """
                def submit(r):
                    pass
                def helper():
                    pass
            """,
            "serve/gateway.py": """
                def pump(t):
                    pass
            """,
            "core/scheduler.py": """
                def run():
                    pass
            """,
        })
        entries = shard_entry_points(project)
        assert entries == {
            "cluster.fleet::submit": DEFAULT_GROUP,
            "serve.gateway::pump": DEFAULT_GROUP,
        }

    def test_decoration_creates_entries_anywhere(self):
        project = build_project({
            "core/loop.py": """
                from repro.util.effects import shard_entry

                @shard_entry("east")
                def spin():
                    pass
            """,
        })
        assert shard_entry_points(project) == {"core.loop::spin": "east"}

    def test_decoration_wins_over_convention(self):
        project = build_project({
            "cluster/fleet.py": """
                from repro.util.effects import shard_entry

                @shard_entry("east")
                def dispatch(r):
                    pass
            """,
        })
        assert shard_entry_points(project) == {
            "cluster.fleet::dispatch": "east",
        }


class TestClassification:
    def test_single_group_is_shard_local(self):
        project = build_project({
            "cluster/a.py": """
                def run():
                    helper()
                def helper():
                    pass
            """,
        })
        analysis = shard_analysis(project)
        assert analysis.classification("cluster.a::run") == "shard_local"
        assert analysis.classification("cluster.a::helper") == "shard_local"

    def test_cross_group_readonly_is_shared_read(self):
        project = build_project({
            "cluster/a.py": """
                from repro.util.effects import shard_entry

                @shard_entry("east")
                def run_east():
                    shared()

                @shard_entry("west")
                def run_west():
                    shared()

                def shared():
                    pass
            """,
        })
        analysis = shard_analysis(project)
        assert analysis.classification("cluster.a::shared") == \
            "shard_shared_read"
        # Two entries in the *same* group stay shard-local: one group
        # is one partitioned heap.
        assert analysis.groups_of("cluster.a::shared") == ("east", "west")

    def test_write_reach_is_interfering(self):
        project = build_project({
            "cluster/a.py": """
                TOTALS = {}

                def run():
                    bump()

                def bump():
                    TOTALS["n"] = 1
            """,
        })
        analysis = shard_analysis(project)
        assert analysis.classification("cluster.a::bump") == \
            "shard_interfering"
        # The caller can reach the write too.
        assert analysis.classification("cluster.a::run") == \
            "shard_interfering"

    def test_exempt_package_writes_do_not_count(self):
        project = build_project({
            "cluster/a.py": """
                def run():
                    record()
            """,
            "obs/metrics.py": """
                REGISTRY = {}

                def record():
                    REGISTRY["n"] = 1
            """,
        })
        analysis = shard_analysis(project)
        assert analysis.classification("cluster.a::run") == "shard_local"
        assert analysis.classification("obs.metrics::record") == "shard_local"

    def test_unreachable_is_unclassified(self):
        project = build_project({
            "core/x.py": """
                def orphan():
                    pass
            """,
        })
        assert shard_analysis(project).classification("core.x::orphan") is None


# ----------------------------------------------------------------------
# CG019 — cross-partition mutable reach
# ----------------------------------------------------------------------

CROSS_WRITE = {
    "cluster/a.py": """
        def run():
            bump()
    """,
    "cluster/b.py": """
        def run():
            bump()
    """,
    "cluster/shared.py": """
        TOTALS = {}

        def bump():
            TOTALS["n"] = 1
    """,
}


class TestCG019:
    def test_two_entries_one_write(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, CROSS_WRITE)],
                            select=["CG019"])
        assert rule_ids(result) == ["CG019"]
        message = result.findings[0].message
        assert "chain 1:" in message and "chain 2:" in message
        assert "cluster.a:run" in message and "cluster.b:run" in message

    def test_single_entry_is_cg015s_business(self, tmp_path):
        files = dict(CROSS_WRITE)
        del files["cluster/b.py"]
        result = lint_paths([write_tree(tmp_path, files)], select=["CG019"])
        assert rule_ids(result) == []

    def test_exempt_package_clean(self, tmp_path):
        files = {
            "cluster/a.py": CROSS_WRITE["cluster/a.py"],
            "cluster/b.py": CROSS_WRITE["cluster/b.py"],
            "obs/shared.py": CROSS_WRITE["cluster/shared.py"],
        }
        result = lint_paths([write_tree(tmp_path, files)], select=["CG019"])
        assert rule_ids(result) == []

    def test_pragma_suppresses(self, tmp_path):
        files = dict(CROSS_WRITE)
        files["cluster/shared.py"] = """
            TOTALS = {}

            def bump():
                TOTALS["n"] = 1  # lint: disable=CG019
        """
        result = lint_paths([write_tree(tmp_path, files)], select=["CG019"])
        assert rule_ids(result) == []


# ----------------------------------------------------------------------
# CG020 — merge-order fragility
# ----------------------------------------------------------------------

class TestCG020:
    def test_dynamic_priority_flagged(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "cluster/a.py": """
                def run(engine, p):
                    engine.at(0.0, run, priority=p + 1)
            """,
        })], select=["CG020"])
        assert rule_ids(result) == ["CG020"]
        assert "cannot resolve" in result.findings[0].message

    def test_foreign_band_collision_flagged(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "cluster/prov.py": """
                LIFECYCLE_PRIORITY = -50

                def boot(engine):
                    engine.at(0.0, boot, priority=LIFECYCLE_PRIORITY)
            """,
            "serve/thing.py": """
                def pump(engine):
                    engine.at(0.0, pump, priority=-50)
            """,
        })], select=["CG020"])
        assert rule_ids(result) == ["CG020"]
        finding = result.findings[0]
        assert finding.path.endswith("thing.py")
        assert "cluster.prov.LIFECYCLE_PRIORITY" in finding.message

    def test_referencing_owner_by_name_is_clean(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "cluster/prov.py": """
                LIFECYCLE_PRIORITY = -50
            """,
            "serve/thing.py": """
                from cluster.prov import LIFECYCLE_PRIORITY

                def pump(engine):
                    engine.at(0.0, pump, priority=LIFECYCLE_PRIORITY)
            """,
        })], select=["CG020"])
        assert rule_ids(result) == []

    def test_own_unique_band_is_clean(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "serve/thing.py": """
                _PRIO_PUMP = -30

                def pump(engine):
                    engine.at(0.0, pump, priority=_PRIO_PUMP)
            """,
        })], select=["CG020"])
        assert rule_ids(result) == []

    def test_default_priority_is_exempt(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "serve/thing.py": """
                def pump(engine):
                    engine.after(1.0, pump)
            """,
        })], select=["CG020"])
        assert rule_ids(result) == []

    def test_sim_package_forwarding_is_exempt(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "cluster/a.py": """
                def run(engine):
                    helper(engine, 3)
            """,
            "sim/engine.py": """
                def helper(engine, priority):
                    engine.after(1.0, helper, priority=priority)
            """,
        })], select=["CG020"])
        assert rule_ids(result) == []

    def test_pragma_suppresses(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "cluster/a.py": """
                def run(engine, p):
                    engine.at(0.0, run, priority=p + 1)  # lint: disable=CG020
            """,
        })], select=["CG020"])
        assert rule_ids(result) == []


# ----------------------------------------------------------------------
# CG021 — seed-stream partition leakage
# ----------------------------------------------------------------------

class TestCG021:
    def test_raw_literal_seed_on_entry_path(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "cluster/a.py": """
                from repro.util.rng import as_rng

                def run():
                    return jitter()

                def jitter():
                    return as_rng(7)
            """,
        })], select=["CG021"])
        assert rule_ids(result) == ["CG021"]
        message = result.findings[0].message
        assert "as_rng(7)" in message and "chain:" in message

    def test_raw_seed_unreachable_is_clean(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "core/a.py": """
                from repro.util.rng import as_rng

                def orphan():
                    return as_rng(7)
            """,
        })], select=["CG021"])
        assert rule_ids(result) == []

    def test_namespace_shared_across_modules(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "cluster/a.py": """
                from repro.util.rng import derive_seed

                def run(seed):
                    return derive_seed(seed, "dup")
            """,
            "cluster/b.py": """
                from repro.util.rng import derive_seed

                def run(seed):
                    return derive_seed(seed, "dup")
            """,
        })], select=["CG021"])
        assert rule_ids(result) == ["CG021", "CG021"]
        first = result.findings[0].message
        assert "'dup'" in first and "cluster.b" in first

    def test_unique_namespaces_are_clean(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "cluster/a.py": """
                from repro.util.rng import derive_seed

                def run(seed):
                    return derive_seed(seed, "a-stream")
            """,
            "cluster/b.py": """
                from repro.util.rng import derive_seed

                def run(seed):
                    return derive_seed(seed, "b-stream")
            """,
        })], select=["CG021"])
        assert rule_ids(result) == []

    def test_same_namespace_one_module_is_clean(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "cluster/a.py": """
                from repro.util.rng import derive_seed

                def run(seed):
                    return derive_seed(seed, "dup"), derive_seed(seed, "dup")
            """,
        })], select=["CG021"])
        assert rule_ids(result) == []


# ----------------------------------------------------------------------
# CG022 — cross-shard digest writes
# ----------------------------------------------------------------------

CROSS_DIGEST = {
    "cluster/agg.py": """
        from repro.util.effects import shard_entry

        @shard_entry("east")
        def run_east(t):
            record_all(t)

        @shard_entry("west")
        def run_west(t):
            record_all(t)

        def record_all(t):
            t.record(1)
    """,
}


class TestCG022:
    def test_two_groups_without_merge_point(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, CROSS_DIGEST)],
                            select=["CG022"])
        assert rule_ids(result) == ["CG022"]
        message = result.findings[0].message
        assert "east, west" in message
        assert "@shard_merge_point" in message

    def test_declared_merge_point_is_clean(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "cluster/agg.py": """
                from repro.util.effects import shard_entry, shard_merge_point

                @shard_entry("east")
                def run_east(t):
                    record_all(t)

                @shard_entry("west")
                def run_west(t):
                    record_all(t)

                @shard_merge_point
                def record_all(t):
                    t.record(1)
            """,
        })], select=["CG022"])
        assert rule_ids(result) == []

    def test_single_group_is_clean(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "cluster/agg.py": """
                def run(t):
                    t.record(1)

                def pump(t):
                    t.record(2)
            """,
        })], select=["CG022"])
        assert rule_ids(result) == []

    def test_pragma_suppresses(self, tmp_path):
        files = {
            "cluster/agg.py": CROSS_DIGEST["cluster/agg.py"].replace(
                "t.record(1)",
                "t.record(1)  # lint: disable=CG022",
            ),
        }
        result = lint_paths([write_tree(tmp_path, files)], select=["CG022"])
        assert rule_ids(result) == []


# ----------------------------------------------------------------------
# The shardplan.json certificate
# ----------------------------------------------------------------------

def _render_fixture(monkeypatch) -> str:
    monkeypatch.chdir(FIXTURE)
    result = lint_paths(["cluster", "serve"], shard_plan=True)
    assert result.shard_plan is not None
    return result.shard_plan


class TestShardPlan:
    def test_schema_and_counts(self, monkeypatch):
        plan = json.loads(_render_fixture(monkeypatch))
        assert plan["schema"] == "cocg-shardplan/1"
        assert plan["classes"] == list(SHARD_CLASSES)
        counts = plan["counts"]
        assert counts["entry_points"] == len(plan["entry_points"])
        assert counts["reachable_functions"] == len(plan["functions"])
        assert counts["modules"] == len(plan["modules"])
        assert (counts["shard_local"] + counts["shard_shared_read"]
                + counts["shard_interfering"]) == len(plan["functions"])
        # All three classes are exercised by the fixture.
        assert counts["shard_local"] > 0
        assert counts["shard_shared_read"] > 0
        assert counts["shard_interfering"] > 0

    def test_fixture_classification(self, monkeypatch):
        plan = json.loads(_render_fixture(monkeypatch))
        assert plan["entry_points"]["cluster.driver::run_east"] == {
            "group": "east", "declared": True,
        }
        assert plan["entry_points"]["serve.frontdoor::pump"] == {
            "group": "fleet", "declared": False,
        }
        assert plan["functions"]["cluster.driver::plan_step"]["class"] == \
            "shard_shared_read"
        assert plan["modules"]["serve.frontdoor"]["class"] == \
            "shard_interfering"
        assert plan["partition_safe_modules"] == ["cluster.driver"]
        # The blocking write carries both the site and a witness chain.
        [blocker] = [
            entry for entry in plan["interfering"]
            if entry["function"] == "serve.frontdoor::tally"
        ]
        assert "WINDOW" in blocker["site"]
        assert blocker["chains"][0].startswith("serve.frontdoor:pump")

    def test_double_run_is_byte_identical(self, monkeypatch):
        assert _render_fixture(monkeypatch) == _render_fixture(monkeypatch)

    def test_matches_committed_golden(self, monkeypatch):
        rendered = _render_fixture(monkeypatch)
        if os.environ.get("REGEN_GOLDEN"):
            GOLDEN.write_text(rendered, encoding="utf-8")
        assert GOLDEN.is_file(), (
            "golden file missing; regenerate per the module docstring"
        )
        assert rendered == GOLDEN.read_text(encoding="utf-8"), (
            "shardplan.json drifted from tests/data/shardplan_golden.json; "
            "if the change is intentional (classification or certificate "
            "layout), regenerate the golden per the module docstring"
        )

    def test_plan_keys_have_no_paths(self, monkeypatch):
        plan = json.loads(_render_fixture(monkeypatch))
        for table in ("entry_points", "functions", "modules"):
            for key in plan[table]:
                assert "/" not in key and "\\" not in key

    def test_render_direct_from_project(self):
        project = build_project(CROSS_WRITE)
        text = render_shard_plan(project)
        assert text.endswith("\n")
        plan = json.loads(text)
        assert plan["counts"]["entry_points"] == 2
        assert plan["partition_safe_modules"] == []


# ----------------------------------------------------------------------
# validate_shard_plan — the runtime cross-check
# ----------------------------------------------------------------------

def _plan(entries):
    return {
        "schema": "cocg-shardplan/1",
        "entry_points": {
            node: {"group": group, "declared": True}
            for node, group in entries.items()
        },
    }


class TestValidateShardPlan:
    def test_matching_plan_passes(self):
        @shard_entry("east")
        def spin():
            pass

        validate_shard_plan(
            _plan({"core.loop::TestValidateShardPlan."
                   "test_matching_plan_passes.<locals>.spin": "east"}),
            [spin],
        )

    def test_undecorated_entry_rejected(self):
        def bare():
            pass

        with pytest.raises(ShardPlanError, match="not decorated"):
            validate_shard_plan(_plan({}), [bare])

    def test_missing_from_certificate_rejected(self):
        @shard_entry("east")
        def spin():
            pass

        with pytest.raises(ShardPlanError, match="stale shardplan"):
            validate_shard_plan(_plan({"core.loop::other": "east"}), [spin])

    def test_group_mismatch_rejected(self):
        @shard_entry("west")
        def spin():
            pass

        qualname = spin.__qualname__
        with pytest.raises(ShardPlanError, match="recorded 'east'"):
            validate_shard_plan(_plan({f"core.loop::{qualname}": "east"}),
                                [spin])

    def test_wrong_schema_rejected(self):
        with pytest.raises(ShardPlanError, match="schema"):
            validate_shard_plan({"schema": "bogus", "entry_points": {}}, [])

    def test_all_problems_reported_sorted(self):
        def bare():
            pass

        @shard_entry("east")
        def spin():
            pass

        with pytest.raises(ShardPlanError) as excinfo:
            validate_shard_plan({"schema": "bogus"}, [bare, spin])
        message = str(excinfo.value)
        lines = message.splitlines()[1:]
        # schema + no table + undecorated bare + spin missing from the
        # (absent) table — all collected, none short-circuits.
        assert len(lines) == 4
        assert lines == sorted(lines)


# ----------------------------------------------------------------------
# Pragma hygiene — unknown rule ids become CG000 findings
# ----------------------------------------------------------------------

class TestPragmaHygiene:
    def test_unknown_rule_id_is_cg000(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "core/a.py": """
                X = 1  # lint: disable=CG199
            """,
        })])
        cg000 = [f for f in result.findings if f.rule_id == "CG000"]
        assert len(cg000) == 1
        message = cg000[0].message
        assert "'CG199'" in message
        assert "valid ids:" in message
        listed = message.split("valid ids:")[1].split(", ")
        assert [r.strip() for r in listed] == \
            sorted(r.strip() for r in listed)
        assert "CG019" in message and "CG022" in message

    def test_known_rule_id_is_clean(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "core/a.py": """
                X = 1  # lint: disable=CG007
            """,
        })])
        assert "CG000" not in rule_ids(result)

    def test_wildcard_pragma_is_clean(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "core/a.py": """
                X = 1  # lint: disable
            """,
        })])
        assert "CG000" not in rule_ids(result)

    def test_cg000_is_not_suppressible(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "core/a.py": """
                # lint: disable=CG000,CG199
                X = 1
            """,
        })])
        assert "CG000" in rule_ids(result)


# ----------------------------------------------------------------------
# CLI and --explain
# ----------------------------------------------------------------------

class TestCLI:
    def test_shard_plan_out_writes_certificate(self, tmp_path, capsys):
        tree = write_tree(tmp_path / "tree", {
            "cluster/a.py": """
                def run():
                    pass
            """,
        })
        out = tmp_path / "shardplan.json"
        code = lint_main([str(tree), "--no-cache", "--select", "CG019",
                          "--shard-plan-out", str(out)])
        capsys.readouterr()
        assert code == 0
        plan = json.loads(out.read_text(encoding="utf-8"))
        assert plan["schema"] == "cocg-shardplan/1"
        assert "cluster.a::run" in plan["entry_points"]

    @pytest.mark.parametrize("rule", ["CG019", "CG020", "CG021", "CG022"])
    def test_explain_has_fix_recipe(self, rule):
        text = explain_rule(rule)
        assert "Fix:" in text
        assert "lint: disable=" + rule in text
