"""Tests for the FPS/QoS model and platform profiles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform_.profile import (
    BIG_SERVER_PLATFORM,
    PlatformProfile,
    REFERENCE_PLATFORM,
    WEAK_GPU_PLATFORM,
)
from repro.platform_.qos import FpsModel, QoSTracker
from repro.platform_.resources import ResourceVector


def rv(cpu=0, gpu=0, gpu_mem=0, ram=0):
    return ResourceVector(cpu=cpu, gpu=gpu, gpu_mem=gpu_mem, ram=ram)


class TestFpsModel:
    def test_full_supply_full_fps(self):
        m = FpsModel()
        assert m.fps(90, rv(cpu=40, gpu=60), rv(cpu=40, gpu=60)) == 90

    def test_frame_lock_caps(self):
        m = FpsModel()
        assert m.fps(90, rv(gpu=10), rv(gpu=10), frame_lock=60) == 60

    def test_starvation_reduces_fps(self):
        m = FpsModel(gamma=1.5)
        full = m.fps(90, rv(gpu=60), rv(gpu=60))
        starved = m.fps(90, rv(gpu=60), rv(gpu=30))
        assert starved < full
        assert starved == pytest.approx(90 * 0.5**1.5)

    def test_binding_dimension_is_the_minimum(self):
        m = FpsModel(gamma=1.0)
        fps = m.fps(100, rv(cpu=50, gpu=50), rv(cpu=25, gpu=50))
        assert fps == pytest.approx(50)

    def test_zero_demand_dimension_never_binds(self):
        m = FpsModel()
        assert m.satisfaction(rv(gpu=50), rv(gpu=50)) == 1.0

    def test_oversupply_does_not_exceed_nominal(self):
        m = FpsModel()
        assert m.fps(60, rv(gpu=10), rv(gpu=99)) == 60

    def test_best_fps(self):
        m = FpsModel()
        assert m.best_fps(90) == 90
        assert m.best_fps(90, frame_lock=60) == 60

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            FpsModel(gamma=0.5)


class TestQoSTracker:
    def test_report_aggregates(self):
        t = QoSTracker()
        t.record("s", 60, 60)
        t.record("s", 20, 60)  # a violation second
        rep = t.report("s")
        assert rep.seconds == 2
        assert rep.violation_seconds == 1
        assert rep.violation_fraction == 0.5
        assert rep.mean_fps == 40
        assert rep.min_fps == 20
        assert rep.fraction_of_best == pytest.approx((1.0 + 20 / 60) / 2)

    def test_paper_tolerance(self):
        t = QoSTracker()
        for _ in range(99):
            t.record("s", 60, 60)
        t.record("s", 10, 60)
        assert t.report("s").meets_paper_tolerance(0.05)

    def test_record_second_uses_model(self):
        t = QoSTracker(FpsModel(gamma=1.0))
        fps = t.record_second("s", 100, rv(gpu=50), rv(gpu=25))
        assert fps == pytest.approx(50)

    def test_overall_fraction_of_best(self):
        t = QoSTracker()
        t.record("a", 30, 60)
        t.record("b", 60, 60)
        assert t.overall_fraction_of_best() == pytest.approx(0.75)

    def test_missing_session(self):
        with pytest.raises(KeyError):
            QoSTracker().report("ghost")

    def test_empty_overall(self):
        with pytest.raises(RuntimeError):
            QoSTracker().overall_fraction_of_best()


class TestPlatformProfile:
    def test_reference_is_identity(self):
        d = rv(cpu=40, gpu=60)
        assert REFERENCE_PLATFORM.scale_demand(d) == d

    def test_weak_gpu_inflates_gpu_only_dims(self):
        d = rv(cpu=40, gpu=60, gpu_mem=40)
        out = WEAK_GPU_PLATFORM.scale_demand(d)
        assert out.gpu == pytest.approx(60 * 1.4)
        assert out.cpu == 40

    def test_clip_at_100(self):
        out = WEAK_GPU_PLATFORM.scale_demand(rv(gpu=90))
        assert out.gpu == 100

    def test_big_server_deflates(self):
        out = BIG_SERVER_PLATFORM.scale_demand(rv(cpu=80))
        assert out.cpu == 40

    def test_scale_array_matches_scalar_path(self):
        demands = np.array([[40, 60, 30, 20], [80, 90, 10, 5]], float)
        batch = WEAK_GPU_PLATFORM.scale_array(demands)
        one = WEAK_GPU_PLATFORM.scale_demand(ResourceVector.from_array(demands[1]))
        np.testing.assert_allclose(batch[1], one.array)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            PlatformProfile("bad", cpu_factor=0)


@settings(max_examples=50, deadline=None)
@given(
    demand=st.floats(1, 100),
    alloc=st.floats(0, 100),
    gamma=st.floats(1, 3),
)
def test_fps_monotone_in_allocation(demand, alloc, gamma):
    """Property: more allocation never lowers FPS."""
    m = FpsModel(gamma=gamma)
    d = rv(gpu=demand)
    lo = m.fps(100, d, rv(gpu=alloc))
    hi = m.fps(100, d, rv(gpu=min(alloc + 10, 100)))
    assert hi >= lo - 1e-9
