"""Tests for the whole-program phase: CG010–CG013, the incremental
cache, the SARIF/baseline reporters, and the git-scoped CLI flags."""

import json
import subprocess
import textwrap

import pytest

from repro.lint import (
    LintCache,
    all_project_rules,
    apply_baseline,
    cache_signature,
    fingerprint,
    lint_paths,
    load_baseline,
    render_sarif,
    resolve_project_rules,
    write_baseline,
)
from repro.lint.__main__ import main as lint_main
from repro.lint.registry import UnknownRuleError


def write_tree(tmp_path, files):
    """Materialise ``{relpath: source}`` under ``tmp_path``."""
    for rel, source in files.items():
        file = tmp_path / rel
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_text(textwrap.dedent(source))
    return tmp_path


def rule_ids(result):
    return [f.rule_id for f in result.findings]


# ----------------------------------------------------------------------
# CG010 — unordered iteration into ordering-sensitive sinks
# ----------------------------------------------------------------------

class TestCG010:
    def test_dict_iteration_reaching_dispatch_across_modules(self, tmp_path):
        """The acceptance scenario: an unsorted dict iteration whose
        enclosing function reaches ``dispatch_order`` through a helper
        in another module."""
        tree = write_tree(tmp_path, {
            "serve/gateway.py": """\
                from util.helpers import fanout

                def drain(queues):
                    for name, q in queues.items():
                        fanout(q)
                """,
            "util/helpers.py": """\
                def fanout(q):
                    return dispatch_order(q)

                def dispatch_order(q):
                    return list(q)
                """,
        })
        result = lint_paths([tree], select=["CG010"])
        assert rule_ids(result) == ["CG010"]
        finding = result.findings[0]
        assert "queues.items()" in finding.message
        assert "dispatch_order" in finding.message
        assert finding.path.endswith("gateway.py")
        assert finding.line == 4

    def test_set_iteration_direct_sink(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "cluster/sched.py": """\
                def submit(self, jobs):
                    for j in {1, 2, 3}:
                        self.place(j)
                """,
        })], select=["CG010"])
        assert rule_ids(result) == ["CG010"]
        assert "iteration over a set" in result.findings[0].message

    def test_sorted_iteration_is_clean(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "serve/gateway.py": """\
                def drain(queues):
                    for name in sorted(queues):
                        dispatch_order(queues[name])

                def dispatch_order(q):
                    return list(q)
                """,
        })], select=["CG010"])
        assert result.ok

    def test_loop_without_sink_reachability_is_clean(self, tmp_path):
        # Same loop, but nothing downstream is ordering-sensitive.
        result = lint_paths([write_tree(tmp_path, {
            "serve/stats.py": """\
                def widths(queues):
                    out = []
                    for name, q in queues.items():
                        out.append(len(q))
                    return out
                """,
        })], select=["CG010"])
        assert result.ok

    def test_non_critical_package_is_out_of_scope(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "analysis/tables.py": """\
                def submit(rows):
                    for k, v in rows.items():
                        record(k, v)

                def record(k, v):
                    return (k, v)
                """,
        })], select=["CG010"])
        assert result.ok

    def test_pragma_suppresses_with_proof(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "serve/gateway.py": """\
                def drain(queues):
                    for name, q in queues.items():  # lint: disable=CG010 -- every q drained independently
                        dispatch_order(q)

                def dispatch_order(q):
                    return list(q)
                """,
        })], select=["CG010"])
        assert result.ok


# ----------------------------------------------------------------------
# CG011 — RNG stream discipline, whole-program
# ----------------------------------------------------------------------

class TestCG011:
    def test_unseeded_draw_two_calls_upstream_of_serve(self, tmp_path):
        """The acceptance scenario: ``random.random()`` laundered
        through two helpers before reaching ``serve/``."""
        tree = write_tree(tmp_path, {
            "serve/admit.py": """\
                from util.jitter import wobble

                def try_admit(x):
                    return wobble(x)
                """,
            "util/jitter.py": """\
                from util.noise import sample

                def wobble(x):
                    return x + sample()
                """,
            "util/noise.py": """\
                import random

                def sample():
                    return random.random()
                """,
        })
        result = lint_paths([tree], select=["CG011"])
        assert rule_ids(result) == ["CG011"]
        finding = result.findings[0]
        assert finding.path.endswith("admit.py")
        # The witness chain names the laundering path.
        assert "wobble" in finding.message
        assert "sample" in finding.message

    def test_draw_directly_inside_critical_package(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "faults/chaos.py": """\
                import random

                def shake():
                    return random.gauss(0, 1)
                """,
        })], select=["CG011"])
        assert rule_ids(result) == ["CG011"]
        assert "random.gauss" in result.findings[0].message

    def test_seeded_streams_are_clean(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "serve/admit.py": """\
                from util.jitter import wobble

                def try_admit(x, rng):
                    return wobble(x, rng)
                """,
            "util/jitter.py": """\
                def wobble(x, rng):
                    return x + rng.uniform(0, 1)
                """,
        })], select=["CG011"])
        assert result.ok

    def test_draw_not_reachable_from_critical_code_is_clean(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "analysis/boot.py": """\
                import random

                def resample(xs):
                    return random.choice(xs)
                """,
            "serve/admit.py": """\
                def try_admit(x):
                    return x
                """,
        })], select=["CG011"])
        assert result.ok


# ----------------------------------------------------------------------
# CG012 — wall-clock taint crossing into sim/
# ----------------------------------------------------------------------

class TestCG012:
    def test_laundered_wall_clock_read(self, tmp_path):
        tree = write_tree(tmp_path, {
            "sim/clock.py": """\
                from util.now import stamp

                def advance(t):
                    return stamp(t)
                """,
            "util/now.py": """\
                import time

                def stamp(t):
                    return time.time() + t
                """,
        })
        result = lint_paths([tree], select=["CG012"])
        assert rule_ids(result) == ["CG012"]
        finding = result.findings[0]
        assert finding.path.endswith("clock.py")
        assert "stamp" in finding.message

    def test_direct_read_in_sim_left_to_cg005(self, tmp_path):
        # A read *inside* sim/ is CG005's finding; CG012 only covers
        # the cross-module case, so selecting CG012 alone stays quiet.
        result = lint_paths([write_tree(tmp_path, {
            "sim/clock.py": """\
                import time

                def advance(t):
                    return time.time() + t
                """,
        })], select=["CG012"])
        assert result.ok

    def test_wall_clock_outside_sim_is_clean(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "analysis/bench.py": """\
                import time

                def elapsed(t0):
                    return time.perf_counter() - t0
                """,
        })], select=["CG012"])
        assert result.ok


# ----------------------------------------------------------------------
# CG013 — digest completeness for event dataclasses
# ----------------------------------------------------------------------

class TestCG013:
    def test_unrecorded_event_dataclass(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "faults/events.py": """\
                from dataclasses import dataclass

                @dataclass
                class CrashEvent:
                    node: str
                """,
        })], select=["CG013"])
        assert rule_ids(result) == ["CG013"]
        assert "CrashEvent" in result.findings[0].message

    def test_event_constructed_in_digest_module_is_covered(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "faults/events.py": """\
                from dataclasses import dataclass

                @dataclass
                class CrashEvent:
                    node: str
                """,
            "sim/telemetry.py": """\
                from faults.events import CrashEvent

                def record_fault(node):
                    return CrashEvent(node=node)

                def digest():
                    return "d"
                """,
        })], select=["CG013"])
        assert result.ok

    def test_non_dataclass_and_other_packages_out_of_scope(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "faults/events.py": """\
                class PlainEvent:
                    pass
                """,
            "analysis/events.py": """\
                from dataclasses import dataclass

                @dataclass
                class ReportEvent:
                    name: str
                """,
        })], select=["CG013"])
        assert result.ok

    def test_pragma_exempts_internal_event(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "sim/engine.py": """\
                from dataclasses import dataclass

                @dataclass
                class TickEvent:  # lint: disable=CG013 -- scheduler-internal
                    t: float
                """,
        })], select=["CG013"])
        assert result.ok


# ----------------------------------------------------------------------
# Registry / selection plumbing
# ----------------------------------------------------------------------

class TestProjectRegistry:
    def test_registry_has_all_project_rules(self):
        assert sorted(all_project_rules()) == [
            "CG010", "CG011", "CG012", "CG013",
            "CG015", "CG016", "CG017", "CG018",
            "CG019", "CG020", "CG021", "CG022",
        ]

    def test_select_spans_both_registries(self):
        # Selecting a per-file id must not error the project resolver
        # (it just resolves to no project rules), and vice versa.
        assert resolve_project_rules(select=["CG001"]) == []
        only_cg011 = resolve_project_rules(select=["CG011"])
        assert [cls.rule_id for cls in only_cg011] == ["CG011"]
        with pytest.raises(UnknownRuleError):
            resolve_project_rules(select=["CG999"])

    def test_no_project_phase_flag(self, tmp_path):
        tree = write_tree(tmp_path, {
            "faults/events.py": """\
                from dataclasses import dataclass

                @dataclass
                class CrashEvent:
                    node: str
                """,
        })
        assert lint_paths([tree], select=["CG013"], whole_program=False).ok
        assert not lint_paths([tree], select=["CG013"]).ok


# ----------------------------------------------------------------------
# Incremental cache
# ----------------------------------------------------------------------

FIXTURE = {
    "serve/admit.py": """\
        from util.jitter import wobble

        def try_admit(x):
            return wobble(x)
        """,
    "util/jitter.py": """\
        from util.noise import sample

        def wobble(x):
            return x + sample()
        """,
    "util/noise.py": """\
        import random

        def sample():
            return random.random()
        """,
}


class TestIncrementalCache:
    def _signature(self):
        return cache_signature(["CG001"], ["CG011"])

    def _lint(self, tree, cache):
        return lint_paths([tree], select=["CG011"], cache=cache)

    def test_warm_run_reparses_nothing_and_agrees(self, tmp_path):
        tree = write_tree(tmp_path / "t", FIXTURE)
        cache_file = tmp_path / "cache.json"
        cold_cache = LintCache.load(cache_file, self._signature())
        cold = self._lint(tree, cold_cache)
        cold_cache.save()
        assert cold.files_reparsed == cold.files_checked == 3
        assert rule_ids(cold) == ["CG011"]

        warm_cache = LintCache.load(cache_file, self._signature())
        warm = self._lint(tree, warm_cache)
        assert warm.files_reparsed == 0
        assert rule_ids(warm) == rule_ids(cold)
        assert [f.line for f in warm.findings] == [f.line for f in cold.findings]

    def test_touched_file_alone_is_reanalyzed(self, tmp_path):
        tree = write_tree(tmp_path / "t", FIXTURE)
        cache_file = tmp_path / "cache.json"
        cache = LintCache.load(cache_file, self._signature())
        self._lint(tree, cache)
        cache.save()

        # Fixing the laundered draw changes one file; the warm run must
        # re-parse only it, yet the *project* findings still update.
        (tree / "util" / "noise.py").write_text(textwrap.dedent("""\
            def sample():
                return 0.5
            """))
        warm_cache = LintCache.load(cache_file, self._signature())
        warm = self._lint(tree, warm_cache)
        assert warm.files_reparsed == 1
        assert warm.ok

    def test_signature_mismatch_invalidates_everything(self, tmp_path):
        tree = write_tree(tmp_path / "t", FIXTURE)
        cache_file = tmp_path / "cache.json"
        cache = LintCache.load(cache_file, self._signature())
        self._lint(tree, cache)
        cache.save()

        other = LintCache.load(cache_file, cache_signature(["CG001"], []))
        assert other.entries == {}

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        tree = write_tree(tmp_path / "t", FIXTURE)
        cache_file = tmp_path / "cache.json"
        cache_file.write_text("{not json")
        cache = LintCache.load(cache_file, self._signature())
        result = self._lint(tree, cache)
        assert result.files_reparsed == 3

    def test_deleted_file_is_pruned(self, tmp_path):
        tree = write_tree(tmp_path / "t", FIXTURE)
        cache_file = tmp_path / "cache.json"
        cache = LintCache.load(cache_file, self._signature())
        self._lint(tree, cache)
        cache.save()
        (tree / "util" / "noise.py").unlink()
        warm = LintCache.load(cache_file, self._signature())
        self._lint(tree, warm)
        warm.save()
        keys = json.loads(cache_file.read_text())["entries"].keys()
        assert not any(k.endswith("noise.py") for k in keys)


# ----------------------------------------------------------------------
# SARIF reporter
# ----------------------------------------------------------------------

class TestSarif:
    def test_sarif_log_shape(self, tmp_path):
        tree = write_tree(tmp_path, FIXTURE)
        result = lint_paths([tree], select=["CG011"])
        log = json.loads(render_sarif(result))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        declared = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"CG000", "CG001", "CG010", "CG011", "CG012",
                "CG013"} <= declared
        res = run["results"][0]
        assert res["ruleId"] == "CG011"
        assert res["locations"][0]["physicalLocation"]["region"]["startLine"] >= 1

    def test_cli_sarif_flag_writes_file(self, tmp_path, capsys):
        tree = write_tree(tmp_path / "t", FIXTURE)
        out = tmp_path / "lint.sarif"
        code = lint_main([str(tree), "--select", "CG011",
                          "--no-cache", "--sarif", str(out)])
        capsys.readouterr()
        assert code == 1
        log = json.loads(out.read_text())
        assert log["runs"][0]["results"][0]["ruleId"] == "CG011"

    def test_cli_format_sarif_stdout(self, tmp_path, capsys):
        tree = write_tree(tmp_path / "t", FIXTURE)
        lint_main([str(tree), "--select", "CG011", "--no-cache",
                   "--format", "sarif"])
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------

class TestBaseline:
    def test_baseline_roundtrip_subtracts_known_findings(self, tmp_path):
        tree = write_tree(tmp_path / "t", FIXTURE)
        result = lint_paths([tree], select=["CG011"])
        assert not result.ok
        baseline_file = tmp_path / "baseline.json"
        n = write_baseline(baseline_file, result.findings)
        assert n == 1
        baseline = load_baseline(baseline_file)
        assert apply_baseline(result.findings, baseline) == []

    def test_new_finding_survives_baseline(self, tmp_path):
        tree = write_tree(tmp_path / "t", FIXTURE)
        result = lint_paths([tree], select=["CG011"])
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, result.findings)

        (tree / "serve" / "direct.py").write_text(textwrap.dedent("""\
            import random

            def pick():
                return random.random()
            """))
        again = lint_paths([tree], select=["CG011"])
        new = apply_baseline(again.findings, load_baseline(baseline_file))
        assert [f.rule_id for f in new] == ["CG011"]
        assert new[0].path.endswith("direct.py")

    def test_fingerprint_survives_line_shift(self, tmp_path):
        tree = write_tree(tmp_path / "t", dict(FIXTURE))
        before = lint_paths([tree], select=["CG011"]).findings
        noise = tree / "util" / "noise.py"
        noise.write_text("# a leading comment\n\n" + noise.read_text())
        admit = tree / "serve" / "admit.py"
        admit.write_text("# shifted\n" + admit.read_text())
        after = lint_paths([tree], select=["CG011"]).findings
        assert [f.line for f in before] != [f.line for f in after]
        assert [fingerprint(f) for f in before] == [fingerprint(f) for f in after]

    def test_cli_baseline_flow(self, tmp_path, capsys):
        tree = write_tree(tmp_path / "t", FIXTURE)
        baseline_file = tmp_path / "baseline.json"
        args = [str(tree), "--select", "CG011", "--no-cache",
                "--baseline", str(baseline_file)]
        assert lint_main(args + ["--update-baseline"]) == 0
        assert lint_main(args) == 0  # old finding is baselined
        assert lint_main([str(tree), "--select", "CG011", "--no-cache",
                          "--update-baseline"]) == 2  # needs --baseline
        capsys.readouterr()

    def test_malformed_baseline_fails_loudly(self, tmp_path, capsys):
        tree = write_tree(tmp_path / "t", FIXTURE)
        bad = tmp_path / "baseline.json"
        bad.write_text('{"findings": "nope"}')
        assert lint_main([str(tree), "--no-cache",
                          "--baseline", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# --changed (git-diff-scoped reporting)
# ----------------------------------------------------------------------

def _git(cwd, *argv):
    subprocess.run(
        ["git", "-c", "user.name=t", "-c", "user.email=t@t", *argv],
        cwd=cwd, check=True, capture_output=True,
    )


class TestChangedFlag:
    def test_only_changed_files_are_reported(self, tmp_path, monkeypatch,
                                             capsys):
        tree = write_tree(tmp_path, {
            "pkg/serve/old.py": """\
                import random

                def try_admit(x):
                    return random.random()
                """,
            "pkg/serve/fresh.py": """\
                def try_admit(x):
                    return x
                """,
        })
        _git(tree, "init", "-q")
        _git(tree, "add", ".")
        _git(tree, "commit", "-qm", "seed")
        # Introduce a violation in one file only; the committed one
        # keeps its (old) violation but must not be reported.
        (tree / "pkg" / "serve" / "fresh.py").write_text(textwrap.dedent("""\
            import random

            def try_admit(x):
                return random.random()
            """))
        monkeypatch.chdir(tree)
        assert lint_main(["pkg", "--select", "CG011", "--no-cache",
                          "--changed", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        paths = {f["path"] for f in payload["findings"]}
        assert all(p.endswith("fresh.py") for p in paths)
        assert payload["count"] >= 1

    def test_untracked_files_count_as_changed(self, tmp_path, monkeypatch,
                                              capsys):
        tree = write_tree(tmp_path, {
            "pkg/serve/ok.py": "def try_admit(x):\n    return x\n",
        })
        _git(tree, "init", "-q")
        _git(tree, "add", ".")
        _git(tree, "commit", "-qm", "seed")
        write_tree(tree, {
            "pkg/serve/new.py": """\
                import random

                def try_admit(x):
                    return random.random()
                """,
        })
        monkeypatch.chdir(tree)
        assert lint_main(["pkg", "--select", "CG011", "--no-cache",
                          "--changed"]) == 1
        out = capsys.readouterr().out
        assert "new.py" in out

    def test_changed_outside_git_is_usage_error(self, tmp_path, monkeypatch,
                                                capsys):
        tree = write_tree(tmp_path, {"pkg/mod.py": "x = 1\n"})
        monkeypatch.chdir(tree)
        monkeypatch.setenv("GIT_DIR", str(tree / "definitely-no-git"))
        assert lint_main(["pkg", "--no-cache", "--changed"]) == 2
        assert "error:" in capsys.readouterr().err
