"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    check_array_1d,
    check_array_2d,
    check_fraction,
    check_in,
    check_nonnegative,
    check_positive,
    check_shape,
)


class TestScalarChecks:
    def test_positive_accepts(self):
        assert check_positive("x", 0.5) == 0.5

    @pytest.mark.parametrize("bad", [0, -1, float("nan"), float("inf")])
    def test_positive_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", bad)

    def test_nonnegative_accepts_zero(self):
        assert check_nonnegative("x", 0.0) == 0.0

    @pytest.mark.parametrize("bad", [-0.1, float("nan")])
    def test_nonnegative_rejects(self, bad):
        with pytest.raises(ValueError):
            check_nonnegative("x", bad)

    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_fraction_inclusive(self, ok):
        assert check_fraction("f", ok) == ok

    @pytest.mark.parametrize("bad", [0.0, 1.0])
    def test_fraction_exclusive_rejects_bounds(self, bad):
        with pytest.raises(ValueError):
            check_fraction("f", bad, inclusive=False)

    def test_fraction_rejects_outside(self):
        with pytest.raises(ValueError):
            check_fraction("f", 1.2)

    def test_check_in(self):
        assert check_in("mode", "a", ("a", "b")) == "a"
        with pytest.raises(ValueError, match="mode"):
            check_in("mode", "c", ("a", "b"))


class TestArrayChecks:
    def test_shape_exact(self):
        a = np.zeros((3, 4))
        assert check_shape("a", a, (3, 4)) is a

    def test_shape_wildcard(self):
        check_shape("a", np.zeros((7, 4)), (-1, 4))

    def test_shape_wrong_rank(self):
        with pytest.raises(ValueError):
            check_shape("a", np.zeros(3), (3, 1))

    def test_shape_wrong_axis(self):
        with pytest.raises(ValueError, match="axis 1"):
            check_shape("a", np.zeros((3, 5)), (3, 4))

    def test_1d_coerces_list(self):
        out = check_array_1d("v", [1, 2, 3])
        assert out.shape == (3,)

    def test_1d_rejects_2d(self):
        with pytest.raises(ValueError):
            check_array_1d("v", [[1, 2]])

    def test_2d_coerces(self):
        assert check_array_2d("m", [[1.0, 2.0]]).shape == (1, 2)

    def test_2d_rejects_1d(self):
        with pytest.raises(ValueError):
            check_array_2d("m", [1, 2, 3])
