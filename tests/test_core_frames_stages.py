"""Tests for frame extraction and the stage library."""

import numpy as np
import pytest

from repro.core.frames import frame_matrix, frames_of_series
from repro.core.stages import Segment, StageLibrary, StageStats, StageTypeId
from repro.platform_.resources import DIMENSIONS
from repro.util.timeseries import ResourceSeries


def series(rows):
    return ResourceSeries(np.asarray(rows, float), DIMENSIONS)


def seg(type_id, start, end, peak, is_loading=False, mean=None, q95=None):
    peak = np.asarray(peak, float)
    return Segment(
        StageTypeId(type_id), start, end, is_loading,
        peak=peak,
        mean=np.asarray(mean, float) if mean is not None else peak * 0.8,
        q95=np.asarray(q95, float) if q95 is not None else peak,
    )


class TestStageTypeId:
    def test_canonical_ordering(self):
        assert StageTypeId([2, 0]) == StageTypeId((0, 2))

    def test_deduplicates(self):
        assert StageTypeId([1, 1, 2]) == StageTypeId([1, 2])

    def test_hashable_key(self):
        d = {StageTypeId([0, 1]): "x"}
        assert d[StageTypeId([1, 0])] == "x"

    def test_contains(self):
        assert StageTypeId([0, 2]).contains(2)
        assert not StageTypeId([0, 2]).contains(1)

    def test_repr(self):
        assert repr(StageTypeId([3, 1])) == "<1+3>"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StageTypeId([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StageTypeId([-1])


class TestFrames:
    def test_frames_of_series(self):
        s = series([[i, 0, 0, 0] for i in range(12)])
        f = frames_of_series(s)
        assert f.n_samples == 2
        assert f.values[0, 0] == pytest.approx(2.0)

    def test_frame_matrix_concatenates(self):
        s1 = series([[1, 0, 0, 0]] * 10)
        s2 = series([[2, 0, 0, 0]] * 5)
        X = frame_matrix([s1, s2])
        assert X.shape == (3, 4)

    def test_frame_matrix_rejects_empty(self):
        with pytest.raises(ValueError):
            frame_matrix([])

    def test_short_series_dropped(self):
        s1 = series([[1, 0, 0, 0]] * 10)
        s2 = series([[2, 0, 0, 0]] * 3)  # shorter than one frame
        assert frame_matrix([s1, s2]).shape[0] == 2


class TestStageStats:
    def test_update_aggregates(self):
        stats = StageStats(StageTypeId([0]))
        stats.update(seg([0], 0, 4, [10, 0, 0, 0], q95=[9, 0, 0, 0]))
        stats.update(seg([0], 4, 12, [20, 0, 0, 0], q95=[18, 0, 0, 0]))
        assert stats.occurrences == 2
        assert stats.total_frames == 12
        assert stats.hard_peak[0] == 20
        # planning peak is frame-weighted q95: (9*4 + 18*8)/12
        assert stats.peak[0] == pytest.approx((9 * 4 + 18 * 8) / 12)

    def test_type_mismatch_rejected(self):
        stats = StageStats(StageTypeId([0]))
        with pytest.raises(ValueError):
            stats.update(seg([1], 0, 2, [1, 0, 0, 0]))

    def test_mean_duration(self):
        stats = StageStats(StageTypeId([0]))
        stats.update(seg([0], 0, 4, [1, 0, 0, 0]))
        stats.update(seg([0], 4, 10, [1, 0, 0, 0]))
        assert stats.mean_duration_seconds(5) == 25.0


class TestStageLibrary:
    def make_library(self):
        centers = np.array(
            [
                [50, 5, 10, 10],   # 0: loading (cpu high, gpu low)
                [20, 20, 15, 12],  # 1: quiet
                [40, 55, 25, 15],  # 2: heavy
            ],
            float,
        )
        return StageLibrary("toy", centers, [0])

    def test_classify_frame(self):
        lib = self.make_library()
        assert lib.classify_frame([49, 6, 10, 10]) == 0
        assert lib.classify_frame([21, 19, 14, 12]) == 1

    def test_is_loading_frame(self):
        lib = self.make_library()
        assert lib.is_loading_frame([50, 5, 10, 10])
        assert not lib.is_loading_frame([40, 55, 25, 15])

    def test_observe_and_stats(self):
        lib = self.make_library()
        lib.observe_segments([
            seg([0], 0, 2, [50, 5, 10, 10], is_loading=True),
            seg([1], 2, 10, [22, 22, 16, 13]),
            seg([0], 10, 12, [50, 5, 10, 10], is_loading=True),
            seg([2], 12, 20, [42, 57, 26, 16]),
        ])
        assert len(lib.stage_types) == 3
        assert lib.execution_types == [StageTypeId([1]), StageTypeId([2])]
        assert lib.stats(StageTypeId([1])).occurrences == 1

    def test_transitions(self):
        lib = self.make_library()
        segs = [
            seg([1], 0, 2, [1, 0, 0, 0]),
            seg([0], 2, 3, [1, 0, 0, 0], is_loading=True),
            seg([2], 3, 5, [1, 0, 0, 0]),
        ]
        lib.observe_segments(segs)
        assert lib.most_common_successor(StageTypeId([1])) == StageTypeId([2])
        assert lib.most_common_successor(StageTypeId([2])) is None

    def test_peak_of_unobserved_type_falls_back_to_centroids(self):
        lib = self.make_library()
        peak = lib.peak_of(StageTypeId([1, 2]))
        assert peak.gpu == pytest.approx(55)

    def test_max_peak_requires_observations(self):
        lib = self.make_library()
        with pytest.raises(RuntimeError):
            lib.max_peak()

    def test_type_is_loading(self):
        lib = self.make_library()
        assert lib.type_is_loading(StageTypeId([0]))
        assert not lib.type_is_loading(StageTypeId([0, 1]))

    def test_loading_type(self):
        assert self.make_library().loading_type == StageTypeId([0])

    def test_unknown_type_stats(self):
        with pytest.raises(KeyError):
            self.make_library().stats(StageTypeId([9]))

    def test_frame_dim_check(self):
        with pytest.raises(ValueError):
            self.make_library().classify_frame([1, 2])

    def test_summary_is_printable(self):
        lib = self.make_library()
        lib.observe_segments([seg([1], 0, 2, [20, 20, 15, 12])])
        text = lib.summary()
        assert "toy" in text and "execution" in text
