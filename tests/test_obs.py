"""Tests for the ``repro.obs`` deterministic observability subsystem.

Covers the metrics registry (get-or-create by canonical name, label
handling, counter monotonicity, fixed-bucket histograms), the sim-time
tracer (deterministic span ids, per-stream nesting, loud failure on
structural misuse), the canonical exporters against inline golden
strings, and the headline acceptance property: two `FleetExperiment`
runs from the same seed and fault plan produce a byte-identical
``metrics.prom`` and an equal ``trace_digest()``.
"""

import json
import math

import pytest

from repro.baselines import CoCGStrategy
from repro.cluster import ClusterScheduler, FleetNode
from repro.cluster.experiment import FleetExperiment
from repro.faults.plan import FaultPlan
from repro.obs import (
    MetricError,
    MetricsRegistry,
    Observer,
    SpanNestingError,
    Tracer,
    UnclosedSpanError,
    chrome_trace,
    chrome_trace_json,
    format_value,
    prometheus_text,
    trace_digest,
)
from repro.serve import AdmissionGateway, GatewayConfig


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------

class TestMetricsRegistry:
    def test_get_or_create_returns_the_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("requests_total", "Requests.", ("outcome",))
        b = reg.counter("requests_total", "ignored on refetch", ("outcome",))
        assert a is b
        assert len(reg) == 1

    def test_conflicting_signature_raises(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", labelnames=("outcome",))
        with pytest.raises(MetricError):
            reg.counter("requests_total", labelnames=("node",))
        with pytest.raises(MetricError):
            reg.gauge("requests_total")
        reg.histogram("wait_seconds", buckets=(1.0, 5.0))
        with pytest.raises(MetricError):
            reg.histogram("wait_seconds", buckets=(1.0, 2.0))

    def test_label_mismatch_raises(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", labelnames=("outcome",))
        with pytest.raises(MetricError):
            c.labels(node="n0")
        with pytest.raises(MetricError):
            c.labels()
        with pytest.raises(MetricError):
            c.inc()  # labeled family has no unlabeled child
        with pytest.raises(MetricError):
            c.value

    def test_counters_only_go_up(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total")
        c.inc(2.0)
        with pytest.raises(MetricError):
            c.inc(-1.0)
        assert c.value == 2.0

    def test_gauge_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5.0)
        g.add(-2.0)
        assert g.value == 3.0

    def test_histogram_buckets_validated_and_cumulative(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.histogram("bad", buckets=())
        with pytest.raises(MetricError):
            reg.histogram("bad", buckets=(5.0, 1.0))
        h = reg.histogram("wait_seconds", buckets=(1.0, 5.0))
        assert h.buckets == (1.0, 5.0, math.inf)
        h.observe(0.5)
        h.observe(7.0)
        (_, child), = h.samples()
        assert child.cumulative() == [1, 1, 2]
        assert child.sum == 7.5 and child.count == 2

    def test_set_time_is_monotone_and_stamps_samples(self):
        reg = MetricsRegistry()
        reg.set_time(10.0)
        reg.set_time(4.0)  # the clock never goes backwards
        assert reg.now == 10.0
        c = reg.counter("n_total")
        c.inc()  # inherits registry.now
        c2 = reg.counter("m_total")
        c2.inc(time=3.0)  # explicit stamp wins
        assert c._default_child().time == 10.0
        assert c2._default_child().time == 3.0


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------

class TestTracer:
    def test_span_ids_are_deterministic(self):
        def run():
            tr = Tracer()
            tr.record("a", 1.0, stream="serve")
            tr.record("b", 2.0, stream="cluster")
            tr.record("c", 3.0, stream="serve")
            return [s.span_id for s in tr.spans]

        assert run() == run() == ["serve#0", "cluster#0", "serve#1"]

    def test_nesting_tracks_parents_per_stream(self):
        tr = Tracer()
        with tr.span("outer", 1.0, stream="serve") as outer:
            tr.record("other-stream", 1.0, stream="faults")
            with tr.span("inner", 1.5, stream="serve") as inner:
                pass
        assert outer.parent is None
        assert inner.parent == "serve#0"
        by_name = {s.name: s for s in tr.spans}
        assert by_name["other-stream"].parent is None

    def test_setting_end_inside_the_block_stretches_the_span(self):
        tr = Tracer()
        with tr.span("pump", 1.0, stream="serve") as s:
            s.end = 3.0
        tr.require_closed()
        assert s.duration == 2.0

    def test_out_of_order_close_raises(self):
        tr = Tracer()
        outer = tr.begin("outer", 1.0, stream="serve")
        tr.begin("inner", 2.0, stream="serve")
        with pytest.raises(SpanNestingError):
            tr.end(outer, 3.0)

    def test_double_close_and_backwards_end_raise(self):
        tr = Tracer()
        s = tr.begin("a", 5.0)
        with pytest.raises(ValueError):
            tr.end(s, 4.0)
        tr.end(s, 6.0)
        with pytest.raises(SpanNestingError):
            tr.end(s, 7.0)

    def test_require_closed_names_the_open_spans(self):
        tr = Tracer()
        tr.begin("stuck", 1.0, stream="serve")
        assert [s.name for s in tr.open_spans()] == ["stuck"]
        with pytest.raises(UnclosedSpanError, match="serve#0"):
            tr.require_closed()

    def test_record_defaults_to_a_point_span(self):
        tr = Tracer()
        s = tr.record("tick", 2.0)
        assert s.duration == 0.0
        assert tr.streams() == ["main"]


# ----------------------------------------------------------------------
# Exporters (golden files inline)
# ----------------------------------------------------------------------

GOLDEN_PROM = (
    "# HELP queue_depth Live queue depth.\n"
    "# TYPE queue_depth gauge\n"
    "queue_depth 3 2000\n"
    "# HELP requests_total Requests by outcome.\n"
    "# TYPE requests_total counter\n"
    'requests_total{outcome="err"} 1 2500\n'
    'requests_total{outcome="ok"} 2 1000\n'
    "# HELP wait_seconds Admission waits.\n"
    "# TYPE wait_seconds histogram\n"
    'wait_seconds_bucket{le="1"} 1 4000\n'
    'wait_seconds_bucket{le="5"} 1 4000\n'
    'wait_seconds_bucket{le="+Inf"} 2 4000\n'
    "wait_seconds_sum 7.5 4000\n"
    "wait_seconds_count 2 4000\n"
)

GOLDEN_TRACE = (
    '{"displayTimeUnit":"ms",'
    '"otherData":{"clock":"simulation-seconds"},'
    '"traceEvents":['
    '{"args":{"name":"faults"},"name":"thread_name","ph":"M","pid":1,"tid":1},'
    '{"args":{"name":"serve"},"name":"thread_name","ph":"M","pid":1,"tid":2},'
    '{"args":{"span_id":"serve#0"},"cat":"serve","dur":2000000,'
    '"name":"outer","ph":"X","pid":1,"tid":2,"ts":1000000},'
    '{"args":{"n":1,"parent":"serve#0","span_id":"serve#1"},"cat":"serve",'
    '"dur":500000,"name":"inner","ph":"X","pid":1,"tid":2,"ts":1500000},'
    '{"args":{"kind":"node_crash","span_id":"faults#0"},"cat":"faults",'
    '"dur":2500000,"name":"window","ph":"X","pid":1,"tid":1,"ts":2000000}'
    "]}\n"
)


def golden_registry():
    reg = MetricsRegistry()
    c = reg.counter("requests_total", "Requests by outcome.", ("outcome",))
    c.labels(outcome="ok").inc(2, time=1.0)
    c.labels(outcome="err").inc(time=2.5)
    reg.gauge("queue_depth", "Live queue depth.").set(3, time=2.0)
    h = reg.histogram("wait_seconds", "Admission waits.", buckets=(1.0, 5.0))
    h.observe(0.5, time=1.0)
    h.observe(7.0, time=4.0)
    return reg


def golden_tracer():
    tr = Tracer()
    with tr.span("outer", 1.0, stream="serve") as s:
        s.end = 3.0
        tr.record("inner", 1.5, 2.0, stream="serve", n=1)
    tr.record("window", 2.0, 4.5, stream="faults", kind="node_crash")
    return tr


class TestExporters:
    def test_format_value_is_canonical(self):
        assert format_value(3.0) == "3"
        assert format_value(7.5) == "7.5"
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"
        assert format_value(math.nan) == "NaN"
        assert format_value(0.1) == "0.1"

    def test_prometheus_text_matches_golden(self):
        assert prometheus_text(golden_registry()) == GOLDEN_PROM

    def test_empty_registry_exports_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_chrome_trace_json_matches_golden(self):
        assert chrome_trace_json(golden_tracer()) == GOLDEN_TRACE

    def test_trace_json_is_valid_and_perfetto_shaped(self):
        doc = json.loads(chrome_trace_json(golden_tracer()))
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X"}
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(e["dur"] >= 0 and isinstance(e["ts"], int) for e in xs)

    def test_export_refuses_open_spans(self):
        tr = Tracer()
        tr.begin("stuck", 1.0)
        with pytest.raises(UnclosedSpanError):
            chrome_trace(tr)

    def test_trace_digest_stability_and_sensitivity(self):
        assert trace_digest(golden_tracer()) == trace_digest(golden_tracer())
        perturbed = golden_tracer()
        perturbed.record("extra", 9.0, stream="serve")
        assert trace_digest(perturbed) != trace_digest(golden_tracer())


# ----------------------------------------------------------------------
# Observer
# ----------------------------------------------------------------------

class TestObserver:
    def test_write_emits_both_artifacts(self, tmp_path):
        obs = Observer(registry=golden_registry(), tracer=golden_tracer())
        metrics_path, trace_path = obs.write(tmp_path / "out")
        assert metrics_path.read_text() == GOLDEN_PROM
        assert trace_path.read_text() == GOLDEN_TRACE
        assert obs.trace_digest() == trace_digest(golden_tracer())

    def test_shared_registry_across_subsystems(self):
        # Two "subsystems" register the same canonical family — they get
        # one counter, regardless of construction order.
        obs = Observer()
        a = obs.counter("shared_total", "Shared.", ("who",))
        b = obs.counter("shared_total", "Shared.", ("who",))
        a.labels(who="x").inc(time=1.0)
        b.labels(who="x").inc(time=2.0)
        assert a is b
        assert a.labels(who="x").value == 2.0


# ----------------------------------------------------------------------
# Instrumented gateway: counters stay usable without an Observer
# ----------------------------------------------------------------------

def build_fleet(toy_profile, *, obs=None, n_nodes=2):
    nodes = [
        FleetNode(f"n{i}", CoCGStrategy(), {"toygame": toy_profile}, seed=i)
        for i in range(n_nodes)
    ]
    cluster = ClusterScheduler(nodes, policy="round-robin")
    gateway = AdmissionGateway(
        cluster, config=GatewayConfig(queue_capacity=64), obs=obs
    )
    cluster.attach_gateway(gateway)
    return cluster


class TestGatewayViews:
    def test_unobserved_gateway_counts_through_private_registry(
        self, toy_spec, toy_profile
    ):
        from repro.serve import SloTracker
        from tests.test_serve import make_request

        cluster = build_fleet(toy_profile, obs=None)
        gateway = cluster.gateway
        assert gateway.queued == 0
        gateway.offer(make_request(toy_spec, rid=0), time=0.0)
        assert gateway.queued == 1 and isinstance(gateway.queued, int)
        assert gateway.shed == 0
        # no spans recorded when unobserved — pump still works
        gateway.pump(0.0, lambda request, incarnation: 1)
        assert isinstance(SloTracker(), SloTracker)  # registry optional

    def test_observed_gateway_lands_in_the_shared_registry(
        self, toy_spec, toy_profile
    ):
        from repro.obs.naming import GATEWAY_OUTCOMES
        from tests.test_serve import make_request

        obs = Observer()
        cluster = build_fleet(toy_profile, obs=obs)
        cluster.gateway.offer(make_request(toy_spec, rid=0), time=0.0)
        family = obs.registry.get(GATEWAY_OUTCOMES)
        assert family is not None
        assert family.labels(outcome="queued").value == 1.0


# ----------------------------------------------------------------------
# Acceptance: same seed + fault plan => byte-identical artifacts
# ----------------------------------------------------------------------

def fault_plan(horizon):
    return (
        FaultPlan(seed=5)
        .node_crash(horizon / 3.0, "n1", recover_after=horizon / 6.0)
        .telemetry_dropout(0.0, duration=float(horizon), rate=0.02)
        .predictor_failure(horizon / 4.0, recover_after=horizon / 4.0)
    )


def observed_run(toy_spec, toy_profile, horizon=400):
    obs = Observer()
    cluster = build_fleet(toy_profile, obs=obs)
    result = FleetExperiment(
        cluster,
        [toy_spec],
        horizon=horizon,
        rate_per_minute=2.0,
        seed=9,
        detect_interval=5,
        fault_plan=fault_plan(horizon),
        obs=obs,
    ).run()
    return result, obs


class TestEndToEndDeterminism:
    def test_double_run_is_byte_identical(self, toy_spec, toy_profile):
        result_a, obs_a = observed_run(toy_spec, toy_profile)
        result_b, obs_b = observed_run(toy_spec, toy_profile)
        assert obs_a.metrics_text() == obs_b.metrics_text()
        assert obs_a.trace_digest() == obs_b.trace_digest()
        assert result_a.telemetry_digest == result_b.telemetry_digest
        # observation changed nothing about the run itself
        assert result_a.completed_runs == result_b.completed_runs

    def test_streams_and_fault_spans_present(self, toy_spec, toy_profile):
        _, obs = observed_run(toy_spec, toy_profile)
        streams = obs.tracer.streams()
        assert "serve" in streams and "faults" in streams
        assert "node:n0" in streams and "node:n1" in streams
        names = {s.name for s in obs.tracer.spans}
        assert "gateway.pump" in names
        assert "fault.node_crash" in names
        # the crash window is a real interval, not a point
        crash = next(
            s for s in obs.tracer.spans if s.name == "fault.node_crash"
        )
        assert crash.duration > 0

    def test_observation_does_not_change_the_run(self, toy_spec, toy_profile):
        def bare_run():
            cluster = build_fleet(toy_profile, obs=None)
            return FleetExperiment(
                cluster,
                [toy_spec],
                horizon=400,
                rate_per_minute=2.0,
                seed=9,
                detect_interval=5,
                fault_plan=fault_plan(400),
            ).run()

        observed, _ = observed_run(toy_spec, toy_profile)
        bare = bare_run()
        assert bare.telemetry_digest == observed.telemetry_digest
        assert bare.completed_runs == observed.completed_runs
        assert bare.degraded_seconds == observed.degraded_seconds
