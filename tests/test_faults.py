"""Tests for ``repro.faults``: injection, degradation, deterministic replay."""

import json

import numpy as np
import pytest

from repro.baselines import CoCGStrategy
from repro.cluster import (
    ClusterScheduler,
    FleetExperiment,
    FleetNode,
    NodeHealth,
)
from repro.core.scheduler import CoCGConfig, CoCGScheduler
from repro.faults import (
    BreakerState,
    FaultKind,
    FaultPlan,
    FaultSpec,
    PredictorHealth,
    validate_plan_payload,
)
from repro.games.player import PlayerModel
from repro.games.session import GameSession
from repro.platform_.allocator import Allocator
from repro.platform_.server import GPUDevice, Server
from repro.sim.telemetry import TelemetryPerturbation, TelemetryRecorder
from repro.workloads.requests import GameRequest


@pytest.fixture(autouse=True)
def _heal_toy_predictors(toy_profile):
    """Undo injected predictor failures on the session-scoped profile.

    Plans without a recovery fault leave ``failure_injected`` set on the
    shared fixture's backends, which would poison every later test.
    """
    yield
    for predictor in toy_profile.predictors.values():
        predictor.failure_injected = False


def make_request(spec, rid=0, script=None):
    player = PlayerModel(f"p{rid}", spec.category, seed=0)
    return GameRequest(
        spec, script or spec.scripts[0].name, player, arrival=0.0, request_id=rid
    )


def make_scheduler(**config_kwargs):
    server = Server("s", gpus=[GPUDevice()])
    allocator = Allocator(server, utilization_cap=0.95)
    return CoCGScheduler(allocator, config=CoCGConfig(**config_kwargs))


def drive(scheduler, sessions, telemetry, seconds, start=0):
    for t in range(start, start + seconds):
        for session in list(sessions):
            if session.finished:
                continue
            alloc = scheduler.allocation_of(session.session_id)
            tick = session.advance(alloc)
            telemetry.record(t, session.session_id, tick.demand, alloc)
        if (t + 1) % 5 == 0:
            scheduler.control(t + 1, telemetry)
    return start + seconds


# ----------------------------------------------------------------------
# The circuit breaker
# ----------------------------------------------------------------------
class TestPredictorHealth:
    def test_opens_after_threshold_consecutive_failures(self):
        health = PredictorHealth(threshold=3, cooldown=60.0)
        health.record_failure(0.0)
        health.record_failure(1.0)
        assert health.state is BreakerState.CLOSED
        health.record_failure(2.0)
        assert health.state is BreakerState.OPEN
        assert health.open_count == 1

    def test_success_resets_the_consecutive_count(self):
        health = PredictorHealth(threshold=2)
        health.record_failure(0.0)
        health.record_success()
        health.record_failure(1.0)
        assert health.state is BreakerState.CLOSED

    def test_open_blocks_until_cooldown(self):
        health = PredictorHealth(threshold=1, cooldown=60.0)
        health.record_failure(10.0)
        assert not health.allow(11.0)
        assert not health.allow(69.0)
        assert health.allow(70.0)  # half-open probe permitted
        assert health.state is BreakerState.HALF_OPEN

    def test_probe_success_recloses(self):
        health = PredictorHealth(threshold=1, cooldown=10.0)
        health.record_failure(0.0)
        assert health.allow(10.0)
        health.record_success()
        assert health.state is BreakerState.CLOSED
        assert health.allow(10.0)

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        health = PredictorHealth(threshold=3, cooldown=10.0)
        for t in range(3):
            health.record_failure(float(t))
        assert health.allow(12.0)
        health.record_failure(12.0)  # a single probe failure re-trips
        assert health.state is BreakerState.OPEN
        assert not health.allow(21.0)
        assert health.allow(22.0)
        assert health.open_count == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictorHealth(threshold=0)
        with pytest.raises(ValueError):
            PredictorHealth(cooldown=-1.0)


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
class TestFaultPlan:
    def plan(self):
        return (
            FaultPlan(seed=11)
            .node_crash(120.0, "n1", recover_after=60.0)
            .telemetry_dropout(0.0, duration=300.0, rate=0.02)
            .predictor_failure(90.0, game="toygame")
            .session_kill(200.0, session="toygame-", requeue=False)
        )

    def test_scheduled_is_time_ordered(self):
        times = [s.time for s in self.plan().scheduled()]
        assert times == sorted(times)

    def test_json_round_trip(self):
        plan = self.plan()
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.seed == plan.seed
        assert clone.faults == plan.faults

    def test_to_dict_omits_defaults(self):
        spec = FaultPlan().node_crash(10.0, "n0").faults[0]
        payload = spec.to_dict()
        assert "session" not in payload and "rate" not in payload

    def test_shifted(self):
        plan = self.plan().shifted(30.0)
        assert plan.faults[0].time == 150.0
        assert len(plan) == 4

    def test_stream_seeds_are_stable_and_distinct(self):
        plan = self.plan()
        specs = plan.scheduled()
        seeds = [plan.stream_seed(i, s) for i, s in enumerate(specs)]
        assert seeds == [plan.stream_seed(i, s) for i, s in enumerate(specs)]
        assert len(set(seeds)) == len(seeds)

    def test_session_prefix_matching(self):
        spec = FaultSpec(FaultKind.SESSION_KILL, 1.0, session="toygame-r2")
        assert spec.matches_session("toygame-r2@n0")
        assert spec.matches_session("toygame-r2.1@n1")
        assert not spec.matches_session("toygame-r3@n0")

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.NODE_CRASH, -1.0)
        with pytest.raises(ValueError):
            FaultPlan().telemetry_dropout(0.0, rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.NODE_CRASH, 0.0, recover_after=0.0)


class TestProvisioningFaultSerialization:
    """Round trips and strict parsing for the lifecycle fault kinds."""

    def plan(self):
        return (
            FaultPlan(seed=7)
            .provision_fail(30.0, duration=45.0)
            .provision_stall(60.0, duration=30.0, stall=20.0)
            .spot_reclaim(120.0, "n0", notice=90.0, requeue=False)
            .warm_pool_exhaust(150.0, duration=75.0)
        )

    def test_round_trip_preserves_new_kinds(self):
        plan = self.plan()
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.faults == plan.faults
        reclaim = clone.faults[2]
        assert reclaim.kind is FaultKind.SPOT_RECLAIM
        assert reclaim.notice == 90.0
        assert reclaim.requeue is False

    def test_defaults_are_elided(self):
        spec = FaultPlan().spot_reclaim(10.0, "n0").faults[0]
        payload = spec.to_dict()
        assert "notice" not in payload  # default 120.0 elided
        assert "stall" not in payload
        assert "requeue" not in payload
        stall = FaultPlan().provision_stall(10.0).faults[0]
        assert "stall" not in stall.to_dict()  # default 30.0 elided

    def test_serialization_is_byte_stable(self):
        a = json.dumps(self.plan().to_dict(), sort_keys=True)
        b = json.dumps(self.plan().to_dict(), sort_keys=True)
        assert a == b
        c = json.dumps(
            FaultPlan.from_dict(self.plan().to_dict()).to_dict(),
            sort_keys=True,
        )
        assert a == c

    def test_unknown_key_rejected_by_name(self):
        payload = self.plan().to_dict()
        payload["faults"][0]["grace"] = 5.0
        with pytest.raises(ValueError, match="grace"):
            FaultPlan.from_dict(payload)

    def test_unknown_kind_rejected_with_known_list(self):
        with pytest.raises(ValueError, match="spot-reclaim"):
            FaultSpec.from_dict({"kind": "meteor-strike", "time": 1.0})

    def test_validate_plan_payload_accepts_good_plans(self):
        assert validate_plan_payload(self.plan().to_dict()) == []

    def test_validate_plan_payload_reports_each_problem(self):
        problems = validate_plan_payload(
            {
                "seed": "eleven",
                "faults": [
                    {"kind": "meteor-strike", "time": 1.0},
                    {"kind": "spot-reclaim", "time": 2.0, "grace": 1.0},
                    {"kind": "node-crash"},
                ],
                "extra": True,
            }
        )
        assert len(problems) == 5
        assert any("extra" in p for p in problems)
        assert any("seed" in p for p in problems)
        assert any(p.startswith("faults[0]:") for p in problems)
        assert any("grace" in p for p in problems)
        assert any("time" in p for p in problems)

    def test_validate_plan_payload_requires_a_mapping(self):
        assert validate_plan_payload([1, 2]) != []
        assert validate_plan_payload({"seed": 1, "faults": "nope"}) != []


# ----------------------------------------------------------------------
# Telemetry perturbations
# ----------------------------------------------------------------------
class TestTelemetryPerturbations:
    def record_steady(self, recorder, seconds=100, sid="s@n0"):
        from repro.platform_.resources import ResourceVector

        demand = ResourceVector(cpu=30, gpu=40, gpu_mem=20, ram=15)
        alloc = ResourceVector(cpu=50, gpu=60, gpu_mem=40, ram=30)
        for t in range(seconds):
            recorder.record(t, sid, demand, alloc)

    def test_dropout_masks_samples(self):
        recorder = TelemetryRecorder(noise_std=0.0, seed=0)
        recorder.add_perturbation(
            TelemetryPerturbation(kind="dropout", start=0.0, rate=0.5, seed=3)
        )
        self.record_steady(recorder)
        assert 0.2 < recorder.valid_fraction("s@n0") < 0.8
        assert recorder.dropped_samples > 0
        window = recorder.observed_window("s@n0", 20)
        assert window is not None and not np.isnan(window).any()

    def test_total_dropout_yields_no_window(self):
        recorder = TelemetryRecorder(noise_std=0.0, seed=0)
        recorder.add_perturbation(
            TelemetryPerturbation(kind="dropout", start=0.0, rate=1.0, seed=3)
        )
        self.record_steady(recorder, seconds=10)
        assert recorder.observed_window("s@n0", 5) is None
        assert recorder.valid_fraction("s@n0") == 0.0

    def test_dropout_is_seed_deterministic(self):
        def run():
            recorder = TelemetryRecorder(noise_std=0.0, seed=0)
            recorder.add_perturbation(
                TelemetryPerturbation(
                    kind="dropout", start=0.0, rate=0.3, seed=9
                )
            )
            self.record_steady(recorder)
            return recorder.digest()

        assert run() == run()

    def test_window_and_node_targeting(self):
        recorder = TelemetryRecorder(noise_std=0.0, seed=0)
        recorder.add_perturbation(
            TelemetryPerturbation(
                kind="dropout", start=50.0, end=60.0, rate=1.0,
                node="n0", seed=1,
            )
        )
        self.record_steady(recorder, sid="s@n0")
        self.record_steady(recorder, sid="s@n1")
        assert recorder.valid_fraction("s@n0") == pytest.approx(0.9)
        assert recorder.valid_fraction("s@n1") == 1.0

    def test_noise_perturbs_observations(self):
        clean = TelemetryRecorder(noise_std=0.0, seed=0)
        noisy = TelemetryRecorder(noise_std=0.0, seed=0)
        noisy.add_perturbation(
            TelemetryPerturbation(kind="noise", start=0.0, std=5.0, seed=4)
        )
        self.record_steady(clean, seconds=20)
        self.record_steady(noisy, seconds=20)
        a = clean.observed_series("s@n0").values
        b = noisy.observed_series("s@n0").values
        assert not np.allclose(a, b)
        assert noisy.digest() != clean.digest()

    def test_fault_events_enter_the_digest(self):
        a = TelemetryRecorder(noise_std=0.0, seed=0)
        b = TelemetryRecorder(noise_std=0.0, seed=0)
        self.record_steady(a, seconds=5)
        self.record_steady(b, seconds=5)
        b.record_fault_event(3.0, "node-crash", "n0")
        assert a.digest() != b.digest()
        assert b.fault_events[0].kind == "node-crash"


# ----------------------------------------------------------------------
# Scheduler degradation (the breaker in the control loop)
# ----------------------------------------------------------------------
class TestSchedulerDegradation:
    def broken_predictors(self, monkeypatch, profile):
        for predictor in profile.predictors.values():
            monkeypatch.setattr(predictor, "failure_injected", True)

    def test_prior_served_while_backends_fail(
        self, monkeypatch, toy_spec, toy_profile
    ):
        sched = make_scheduler(failure_threshold=2)
        telemetry = TelemetryRecorder(noise_std=0.5, seed=0)
        session = GameSession(toy_spec, "full", seed=3)
        assert sched.try_admit(session, toy_profile, time=0).admitted
        self.broken_predictors(monkeypatch, toy_profile)
        drive(sched, [session], telemetry, 150)
        ctl = sched.sessions[session.session_id]
        assert ctl.prior_served > 0
        assert ctl.health.total_failures > 0

    def test_breaker_opens_and_session_degrades(
        self, monkeypatch, toy_spec, toy_profile
    ):
        sched = make_scheduler(failure_threshold=1, failure_cooldown=300.0)
        telemetry = TelemetryRecorder(noise_std=0.5, seed=0)
        session = GameSession(toy_spec, "full", seed=3)
        sched.try_admit(session, toy_profile, time=0)
        self.broken_predictors(monkeypatch, toy_profile)
        drive(sched, [session], telemetry, 150)
        assert session.session_id in sched.degraded_sessions()
        actions = {d.action for d in sched.decision_log}
        assert "degraded" in actions

    def test_degraded_allocation_follows_usage(
        self, monkeypatch, toy_spec, toy_profile
    ):
        config = dict(
            failure_threshold=1, failure_cooldown=600.0,
            degraded_margin=0.25, degraded_floor=6.0,
        )
        sched = make_scheduler(**config)
        telemetry = TelemetryRecorder(noise_std=0.0, seed=0)
        session = GameSession(toy_spec, "full", seed=3)
        sched.try_admit(session, toy_profile, time=0)
        self.broken_predictors(monkeypatch, toy_profile)
        drive(sched, [session], telemetry, 150)
        assert sched.degraded_sessions() == [session.session_id]
        ctl = sched.sessions[session.session_id]
        window = telemetry.observed_window(session.session_id, 5)
        expected = np.clip(
            np.maximum(window * 1.25, 6.0), 0.0, 100.0
        )
        np.testing.assert_allclose(ctl.desired.array, expected)

    def test_breaker_recloses_after_cooldown(
        self, monkeypatch, toy_spec, toy_profile
    ):
        sched = make_scheduler(failure_threshold=1, failure_cooldown=20.0)
        telemetry = TelemetryRecorder(noise_std=0.5, seed=0)
        session = GameSession(toy_spec, "full", seed=3)
        sched.try_admit(session, toy_profile, time=0)
        predictor = next(iter(toy_profile.predictors.values()))
        monkeypatch.setattr(predictor, "failure_injected", True)
        drive(sched, [session], telemetry, 150)
        assert sched.degraded_sessions() == [session.session_id]
        # Backend heals; the next post-cooldown probe must re-close.
        monkeypatch.setattr(predictor, "failure_injected", False)
        drive(sched, [session], telemetry, 60, start=150)
        assert sched.degraded_sessions() == []
        actions = {d.action for d in sched.decision_log}
        assert "breaker-close" in actions

    def test_control_errors_are_isolated_per_session(
        self, monkeypatch, toy_spec, toy_profile
    ):
        sched = make_scheduler(failure_threshold=1)
        telemetry = TelemetryRecorder(noise_std=0.5, seed=0)
        good = GameSession(toy_spec, "full", seed=1)
        bad = GameSession(toy_spec, "full", seed=2)
        sched.try_admit(good, toy_profile, time=0)
        sched.try_admit(bad, toy_profile, time=0)
        original = CoCGScheduler._control_session

        def explode(self, ctl, window, interval):
            if ctl.session is bad:
                raise RuntimeError("boom")
            return original(self, ctl, window, interval)

        monkeypatch.setattr(CoCGScheduler, "_control_session", explode)
        drive(sched, [good, bad], telemetry, 20)
        # The bad session was quarantined, the good one kept its loop.
        assert any(e.kind == "control-error" for e in telemetry.fault_events)
        assert sched.sessions[good.session_id].health.total_failures == 0
        assert sched.sessions[bad.session_id].health.total_failures > 0


class TestMispredictionRecovery:
    def test_wrong_predictions_recover_via_callback(
        self, monkeypatch, toy_spec, toy_profile
    ):
        """Force every next-stage prediction wrong: the scheduler must
        recover through the rehearsal-callback/Eq-1 path, finish the
        session, and keep QoS accounting coherent."""
        predictor = next(iter(toy_profile.predictors.values()))
        lib = toy_profile.library
        worst = max(
            lib.execution_types, key=lambda t: lib.peak_of(t).max_component()
        )
        cheapest = min(
            lib.execution_types, key=lambda t: lib.peak_of(t).max_component()
        )

        def always_wrong(exec_history, *, player_id=None, group_hist=None):
            # Predict the cheap stage right before the heavy one lands
            # (and vice versa) so every confirmation is a mismatch.
            if exec_history and exec_history[-1] == cheapest:
                return cheapest, 0.9  # truth: heavy comes next
            return worst, 0.9

        monkeypatch.setattr(predictor, "predict_next", always_wrong)

        node = FleetNode("n0", CoCGStrategy(), {"toygame": toy_profile})
        request = make_request(toy_spec, rid=1, script="full")
        assert node.try_admit(request, time=0, seed=1)
        (sid,) = node.sessions
        t = 0
        while node.n_running and t < 1000:
            node.tick(t)
            if (t + 1) % 5 == 0:
                node.control(t + 1)
            t += 1
        assert node.completed.get("toygame", 0) == 1
        scheduler = node.strategy.scheduler
        actions = {d.action for d in scheduler.decision_log}
        # The Eq-1 redundancy path fired at least once.
        assert "callback" in actions or any(
            "re-matched" in d.detail for d in scheduler.decision_log
        )
        # Mispredictions never broke the breaker or the accounting.
        assert not scheduler.degraded_sessions()
        report = node.qos.report(sid)
        assert report.seconds > 0
        assert 0.0 <= report.violation_fraction <= 1.0
        assert report.degraded_seconds == 0


# ----------------------------------------------------------------------
# Cluster resilience: health states, requeue, dead letters
# ----------------------------------------------------------------------
class TestClusterResilience:
    def make_cluster(self, toy_profile, n=2, **kwargs):
        nodes = [
            FleetNode(f"n{i}", CoCGStrategy(), {"toygame": toy_profile})
            for i in range(n)
        ]
        return ClusterScheduler(nodes, policy="round-robin", **kwargs)

    def test_backoff_schedule(self, toy_profile):
        cluster = self.make_cluster(toy_profile)
        assert cluster.backoff(0) == 0.0
        assert cluster.backoff(1) == 5.0
        assert cluster.backoff(2) == 10.0
        assert cluster.backoff(3) == 20.0
        assert cluster.backoff(10) == 60.0  # capped

    def test_down_node_gets_no_dispatch(self, toy_spec, toy_profile):
        cluster = self.make_cluster(toy_profile)
        cluster.crash_node("n0", 0.0)
        for rid in range(4):
            node = cluster.dispatch(
                make_request(toy_spec, rid, "full"), time=0, seed=rid
            )
            assert node is None or node.node_id == "n1"

    def test_draining_node_keeps_sessions_but_gets_none(
        self, toy_spec, toy_profile
    ):
        cluster = self.make_cluster(toy_profile)
        node = cluster.dispatch(make_request(toy_spec, 1, "full"), time=0, seed=1)
        cluster.drain_node(node.node_id, 5.0)
        assert node.health is NodeHealth.DRAINING
        assert node.n_running == 1
        other = cluster.dispatch(make_request(toy_spec, 2, "full"), time=6, seed=2)
        assert other is not None and other.node_id != node.node_id

    def test_crash_requeues_with_incarnation(self, toy_spec, toy_profile):
        cluster = self.make_cluster(toy_profile, n=2)
        request = make_request(toy_spec, 7, "full")
        node = cluster.dispatch(request, time=0, seed=7)
        killed = cluster.crash_node(node.node_id, 50.0)
        assert len(killed) == 1
        assert cluster.evictions == 1 and cluster.requeues == 1
        assert cluster.queue_depth == 1
        started = cluster.pump(50.0, seed_for=lambda r, inc: 100 + inc)
        assert started == [request]
        relaunched = [
            sid
            for other in cluster.nodes
            for sid in other.sessions
            if ".1@" in sid
        ]
        assert relaunched, "relaunch must carry the incarnation suffix"

    def test_kill_session_without_requeue(self, toy_spec, toy_profile):
        cluster = self.make_cluster(toy_profile)
        cluster.dispatch(make_request(toy_spec, 1, "full"), time=0, seed=1)
        sid = cluster.kill_session(10.0, session="toygame-", requeue=False)
        assert sid is not None
        assert cluster.total_running == 0
        assert cluster.queue_depth == 0
        assert cluster.evictions == 1

    def test_retries_exhaust_into_dead_letters(self, toy_spec, toy_profile):
        cluster = self.make_cluster(toy_profile, n=1, max_retries=2)
        cluster.crash_node("n0", 0.0)
        cluster.submit(make_request(toy_spec, 3, "full"), time=0.0)
        t = 0.0
        while cluster.queue_depth and t < 500:
            cluster.pump(t, seed_for=lambda r, inc: 1)
            t += 5.0
        assert cluster.queue_depth == 0
        assert [d.reason for d in cluster.dead_letters] == ["retries exhausted"]
        assert cluster.dead_letters[0].attempts == 3

    def test_queue_overflow_dead_letters(self, toy_spec, toy_profile):
        cluster = self.make_cluster(toy_profile, queue_limit=1)
        assert cluster.submit(make_request(toy_spec, 1, "full"), time=0.0)
        assert not cluster.submit(make_request(toy_spec, 2, "full"), time=0.0)
        assert [d.reason for d in cluster.dead_letters] == ["queue overflow"]

    def test_crash_records_fault_events(self, toy_spec, toy_profile):
        cluster = self.make_cluster(toy_profile)
        node = cluster.dispatch(make_request(toy_spec, 1, "full"), time=0, seed=1)
        cluster.crash_node(node.node_id, 30.0)
        kinds = [e.kind for e in node.telemetry.fault_events]
        assert "node-crash" in kinds and "session-kill" in kinds


# ----------------------------------------------------------------------
# Faulted fleet experiments: replay + degradation-not-collapse
# ----------------------------------------------------------------------
class TestFaultedExperiment:
    def make_cluster(self, toy_profile, n=2, **kwargs):
        nodes = [
            FleetNode(
                f"n{i}", CoCGStrategy(), {"toygame": toy_profile}, seed=i
            )
            for i in range(n)
        ]
        return ClusterScheduler(nodes, policy="round-robin", **kwargs)

    def plan(self, horizon=600):
        return (
            FaultPlan(seed=5)
            .node_crash(horizon // 3, "n1", recover_after=horizon // 6)
            .telemetry_dropout(0.0, duration=float(horizon), rate=0.02)
            .predictor_failure(horizon // 4, recover_after=horizon // 4)
        )

    def run_once(self, toy_spec, toy_profile, plan, horizon=600, **kwargs):
        return FleetExperiment(
            self.make_cluster(toy_profile, **kwargs),
            [toy_spec],
            horizon=horizon,
            rate_per_minute=2.0,
            seed=9,
            fault_plan=plan,
        ).run()

    def test_replay_is_byte_identical(self, toy_spec, toy_profile):
        a = self.run_once(toy_spec, toy_profile, self.plan())
        b = self.run_once(toy_spec, toy_profile, self.plan())
        assert a.telemetry_digest == b.telemetry_digest
        assert a.telemetry_digest != ""
        assert a.completed_runs == b.completed_runs
        assert a.violation_fraction == b.violation_fraction
        assert a.degraded_seconds == b.degraded_seconds
        assert a.requeues == b.requeues

    def test_faults_change_the_digest(self, toy_spec, toy_profile):
        clean = self.run_once(toy_spec, toy_profile, None)
        faulted = self.run_once(toy_spec, toy_profile, self.plan())
        assert clean.telemetry_digest != faulted.telemetry_digest
        assert clean.fault_events == []
        assert faulted.fault_events

    def test_degradation_not_collapse(self, toy_spec, toy_profile):
        """Half the fleet crashes for good and every predictor breaks:
        the run must still complete with bounded QoS damage and every
        displaced request accounted for."""
        plan = (
            FaultPlan(seed=5)
            .node_crash(200.0, "n1")  # no recovery
            .predictor_failure(150.0)  # no recovery
            .telemetry_dropout(0.0, duration=600.0, rate=0.05)
        )
        result = self.run_once(
            toy_spec, toy_profile, plan, max_retries=3
        )
        assert sum(result.completed_runs.values()) >= 1
        assert result.evictions >= 1
        assert np.isfinite(result.violation_fraction)
        assert 0.0 <= result.violation_fraction <= 0.75
        accounted = result.requeues + sum(
            1 for d in result.dead_letters if d.reason == "retries exhausted"
        )
        assert accounted >= result.evictions
        assert any("node-crash" in event for event in result.fault_events)

    def test_fleet_charges_degraded_seconds(self, toy_spec, toy_profile):
        plan = FaultPlan(seed=1).predictor_failure(50.0)
        nodes = [
            FleetNode(
                "n0",
                CoCGStrategy(
                    config=CoCGConfig(failure_threshold=1, failure_cooldown=600.0)
                ),
                {"toygame": toy_profile},
                seed=0,
            )
        ]
        result = FleetExperiment(
            ClusterScheduler(nodes),
            [toy_spec],
            horizon=400,
            rate_per_minute=2.0,
            seed=9,
            fault_plan=plan,
        ).run()
        assert result.degraded_seconds > 0
