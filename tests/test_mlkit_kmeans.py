"""Tests for repro.mlkit.kmeans: clustering correctness and the elbow."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mlkit.kmeans import KMeans, elbow_k, sse_curve
from repro.mlkit.metrics import sse


def blobs(rng, centers, n_per=60, std=0.4):
    parts = [rng.normal(c, std, size=(n_per, len(c))) for c in centers]
    return np.concatenate(parts)


class TestKMeansFit:
    def test_recovers_separated_blobs(self, rng):
        X = blobs(rng, [[0, 0], [10, 0], [0, 10]])
        km = KMeans(3, seed=0).fit(X)
        expected = np.array([[0, 0], [10, 0], [0, 10]], dtype=float)
        # Each true center must have exactly one fitted center nearby.
        dists = np.linalg.norm(
            expected[:, None, :] - km.cluster_centers_[None], axis=2
        )
        matches = dists.argmin(axis=1)
        assert sorted(matches.tolist()) == [0, 1, 2]
        assert np.all(dists.min(axis=1) < 0.5)

    def test_inertia_equals_sse_of_labels(self, rng):
        X = blobs(rng, [[0, 0], [5, 5]])
        km = KMeans(2, seed=0).fit(X)
        assert km.inertia_ == pytest.approx(
            sse(X, km.cluster_centers_, km.labels_), rel=1e-9
        )

    def test_deterministic_under_seed(self, rng):
        X = blobs(rng, [[0, 0], [5, 5]])
        a = KMeans(2, seed=9).fit(X)
        b = KMeans(2, seed=9).fit(X)
        np.testing.assert_array_equal(a.labels_, b.labels_)

    def test_k1_center_is_mean(self, rng):
        X = rng.normal(size=(50, 3))
        km = KMeans(1, seed=0).fit(X)
        np.testing.assert_allclose(km.cluster_centers_[0], X.mean(axis=0), atol=1e-9)

    def test_k_exceeds_samples(self):
        with pytest.raises(ValueError):
            KMeans(5).fit(np.zeros((3, 2)))

    def test_duplicate_points_keep_k_clusters(self):
        X = np.zeros((10, 2))
        X[5:] = 1.0
        km = KMeans(2, seed=0).fit(X)
        assert len(np.unique(km.labels_)) == 2

    def test_rejects_nan(self):
        X = np.zeros((4, 2))
        X[0, 0] = np.nan
        with pytest.raises(ValueError):
            KMeans(2).fit(X)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KMeans(0)
        with pytest.raises(ValueError):
            KMeans(2, n_init=0)
        with pytest.raises(ValueError):
            KMeans(2, tol=0)


class TestKMeansPredict:
    def test_predict_matches_training_labels(self, rng):
        X = blobs(rng, [[0, 0], [8, 8]])
        km = KMeans(2, seed=0).fit(X)
        np.testing.assert_array_equal(km.predict(X), km.labels_)

    def test_predict_requires_fit(self):
        with pytest.raises(Exception):
            KMeans(2).predict(np.zeros((2, 2)))

    def test_predict_feature_mismatch(self, rng):
        km = KMeans(2, seed=0).fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError):
            km.predict(rng.normal(size=(4, 2)))

    def test_transform_shape_and_nonneg(self, rng):
        X = blobs(rng, [[0, 0], [8, 8]])
        km = KMeans(2, seed=0).fit(X)
        d = km.transform(X)
        assert d.shape == (len(X), 2)
        assert np.all(d >= 0)

    def test_score_is_negative_sse(self, rng):
        X = blobs(rng, [[0, 0], [8, 8]])
        km = KMeans(2, seed=0).fit(X)
        assert km.score(X) == pytest.approx(-km.inertia_, rel=1e-6)


class TestSseCurve:
    def test_monotone_nonincreasing(self, rng):
        X = blobs(rng, [[0, 0], [6, 0], [0, 6]])
        curve = sse_curve(X, range(1, 8), seed=0)
        assert np.all(np.diff(curve) <= 1e-6)

    def test_empty_k_values(self):
        with pytest.raises(ValueError):
            sse_curve(np.zeros((5, 2)), [])


class TestElbow:
    def test_recovers_true_k_on_blobs(self, rng):
        X = blobs(rng, [[0, 0], [12, 0], [0, 12], [12, 12]], std=0.5)
        ks = list(range(1, 10))
        assert elbow_k(ks, sse_curve(X, ks, seed=0)) == 4

    def test_flat_curve_returns_min_k(self):
        assert elbow_k([1, 2, 3], [5.0, 5.0, 5.0]) == 1

    def test_methods_exist(self):
        ks = [1, 2, 3, 4, 5]
        s = [100.0, 20.0, 18.0, 17.0, 16.5]
        assert elbow_k(ks, s, method="drop") == 2
        assert elbow_k(ks, s, method="chord") == 2
        assert elbow_k(ks, s, method="flatten") in (2, 3, 4, 5)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            elbow_k([1, 2, 3], [3.0, 2.0, 1.0], method="magic")

    def test_requires_increasing_k(self):
        with pytest.raises(ValueError):
            elbow_k([1, 3, 2], [3.0, 2.0, 1.0])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            elbow_k([1, 2], [2.0, 1.0])


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_kmeans_labels_are_nearest_centers(seed):
    """Property: every point's label is its nearest fitted center."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-5, 5, size=(40, 2))
    km = KMeans(3, seed=0, n_init=2).fit(X)
    d = ((X[:, None, :] - km.cluster_centers_[None]) ** 2).sum(-1)
    np.testing.assert_array_equal(km.labels_, d.argmin(axis=1))
