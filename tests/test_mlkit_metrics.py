"""Tests for repro.mlkit.metrics."""

import numpy as np
import pytest

from repro.mlkit.metrics import accuracy_score, confusion_matrix, macro_f1_score, sse


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_half(self):
        assert accuracy_score([0, 0, 1, 1], [0, 1, 1, 0]) == 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([1], [1, 2])

    def test_empty(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_string_labels(self):
        assert accuracy_score(["a", "b"], ["a", "c"]) == 0.5


class TestConfusionMatrix:
    def test_basic(self):
        cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(cm, [[1, 1], [0, 2]])

    def test_explicit_labels_order(self):
        cm = confusion_matrix([1, 0], [1, 0], labels=[1, 0])
        np.testing.assert_array_equal(cm, [[1, 0], [0, 1]])

    def test_row_sums_are_class_counts(self):
        y = np.array([0, 1, 1, 2, 2, 2])
        p = np.array([0, 1, 2, 2, 0, 2])
        cm = confusion_matrix(y, p)
        np.testing.assert_array_equal(cm.sum(axis=1), [1, 2, 3])


class TestMacroF1:
    def test_perfect(self):
        assert macro_f1_score([0, 1, 2], [0, 1, 2]) == 1.0

    def test_all_wrong(self):
        assert macro_f1_score([0, 1], [1, 0]) == 0.0

    def test_imbalanced_penalises_missing_class(self):
        # Predicting the majority class everywhere: minority F1 = 0.
        score = macro_f1_score([0, 0, 0, 1], [0, 0, 0, 0])
        assert 0 < score < 0.6


class TestSse:
    def test_zero_when_points_equal_centers(self):
        X = np.array([[1.0, 1.0], [2.0, 2.0]])
        assert sse(X, X, [0, 1]) == 0.0

    def test_known_value(self):
        X = np.array([[0.0], [2.0]])
        centers = np.array([[1.0]])
        assert sse(X, centers, [0, 0]) == 2.0

    def test_label_bounds(self):
        with pytest.raises(ValueError):
            sse(np.zeros((2, 1)), np.zeros((1, 1)), [0, 5])

    def test_label_length(self):
        with pytest.raises(ValueError):
            sse(np.zeros((2, 1)), np.zeros((1, 1)), [0])


class TestSilhouette:
    def test_well_separated_clusters_near_one(self, rng):
        from repro.mlkit.metrics import silhouette_score

        X = np.concatenate([
            rng.normal(0, 0.1, size=(30, 2)),
            rng.normal(10, 0.1, size=(30, 2)),
        ])
        labels = np.repeat([0, 1], 30)
        assert silhouette_score(X, labels) > 0.95

    def test_random_labels_near_zero(self, rng):
        from repro.mlkit.metrics import silhouette_score

        X = rng.normal(size=(60, 2))
        labels = rng.integers(0, 2, size=60)
        assert abs(silhouette_score(X, labels)) < 0.2

    def test_wrong_labels_negative(self, rng):
        from repro.mlkit.metrics import silhouette_score

        X = np.concatenate([
            rng.normal(0, 0.1, size=(20, 2)),
            rng.normal(5, 0.1, size=(20, 2)),
        ])
        # Deliberately split each true blob across both labels.
        labels = np.tile([0, 1], 20)
        assert silhouette_score(X, labels) < 0.1

    def test_singleton_cluster_contributes_zero(self):
        from repro.mlkit.metrics import silhouette_score

        X = np.array([[0.0, 0.0], [0.1, 0.0], [9.0, 9.0]])
        labels = np.array([0, 0, 1])
        score = silhouette_score(X, labels)
        assert 0 < score <= 1

    def test_requires_two_clusters(self):
        from repro.mlkit.metrics import silhouette_score

        with pytest.raises(ValueError):
            silhouette_score(np.zeros((4, 2)), [0, 0, 0, 0])

    def test_label_length_checked(self):
        from repro.mlkit.metrics import silhouette_score

        with pytest.raises(ValueError):
            silhouette_score(np.zeros((4, 2)), [0, 1])
