"""Tests for ``repro.cluster.provisioner``: the elastic capacity plane.

Lifecycle transitions, warm pools, retry/timeout behaviour, spot
reclamation with graceful drain, the session-accountability ledger, the
gateway's capacity-coupled backpressure, and byte-identical replay of
the whole capacity history.
"""

import pytest

from repro.baselines import CoCGStrategy
from repro.cluster import (
    ClusterScheduler,
    FleetExperiment,
    FleetNode,
    NodeHealth,
    Provisioner,
    ProvisionerConfig,
)
from repro.cluster.fleet import dispatch_order
from repro.cluster.provisioner import LIFECYCLE_PRIORITY
from repro.faults import FaultPlan, reclaim_storm_plan
from repro.games.player import PlayerModel
from repro.serve import AdmissionGateway, GatewayConfig
from repro.sim.engine import SimulationEngine
from repro.workloads.requests import GameRequest


def make_request(spec, rid=0, script=None):
    player = PlayerModel(f"p{rid}", spec.category, seed=0)
    return GameRequest(
        spec, script or spec.scripts[0].name, player, arrival=0.0,
        request_id=rid,
    )


def make_cluster(toy_profile, n=2, policy="round-robin", **kwargs):
    nodes = [
        FleetNode(f"n{i}", CoCGStrategy(), {"toygame": toy_profile}, seed=i)
        for i in range(n)
    ]
    return ClusterScheduler(nodes, policy=policy, **kwargs)


def make_provisioner(cluster, toy_profile, *, seed=0, **cfg):
    return Provisioner(
        cluster,
        lambda node_id: FleetNode(
            node_id, CoCGStrategy(), {"toygame": toy_profile}, seed=0
        ),
        config=ProvisionerConfig(**cfg),
        seed=seed,
    )


class TestProvisionerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProvisionerConfig(warm_pool_size=-1)
        with pytest.raises(ValueError):
            ProvisionerConfig(target_up=-1)
        with pytest.raises(ValueError):
            ProvisionerConfig(timeout=0.0)
        with pytest.raises(ValueError):
            ProvisionerConfig(retry_factor=0.5)
        with pytest.raises(ValueError):
            ProvisionerConfig(check_interval=0.0)
        with pytest.raises(ValueError):
            ProvisionerConfig(max_pending=0)
        with pytest.raises(ValueError):
            ProvisionerConfig(max_retries=-1)

    def test_defaults_are_valid(self):
        config = ProvisionerConfig()
        assert config.warm_pool_size == 1
        assert config.target_up is None


class TestLifecycle:
    def test_attach_pre_boots_the_warm_pool(self, toy_profile):
        cluster = make_cluster(toy_profile)
        prov = make_provisioner(cluster, toy_profile, warm_pool_size=2)
        assert cluster.provisioner is prov
        assert cluster.capacity_target == 2  # the two UP seed nodes
        engine = SimulationEngine()
        prov.attach(engine)
        assert prov.ready_count == 2
        assert cluster.warm_count == 2
        standby = cluster.node("spot-0")
        assert standby.health is NodeHealth.WARMING

    def test_attach_twice_rejected(self, toy_profile):
        cluster = make_cluster(toy_profile)
        prov = make_provisioner(cluster, toy_profile)
        prov.attach(SimulationEngine())
        with pytest.raises(RuntimeError):
            prov.attach(SimulationEngine())

    def test_request_node_needs_attachment(self, toy_profile):
        cluster = make_cluster(toy_profile)
        prov = make_provisioner(cluster, toy_profile)
        with pytest.raises(RuntimeError):
            prov.request_node(0.0)

    def test_provision_latency_is_seeded(self, toy_profile):
        def boot_times(seed):
            cluster = make_cluster(toy_profile)
            prov = make_provisioner(
                cluster, toy_profile, seed=seed, warm_pool_size=0
            )
            engine = SimulationEngine()
            prov.attach(engine)
            prov.request_node(0.0)
            engine.run_until(600.0)
            return [
                (e.time, e.node, e.state) for e in prov.events
                if e.state == "warm"
            ]

        assert boot_times(7) == boot_times(7)
        assert boot_times(7) != boot_times(8)

    def test_warm_standby_promotes_on_capacity_loss(self, toy_profile):
        cluster = make_cluster(toy_profile)
        prov = make_provisioner(cluster, toy_profile, warm_pool_size=1)
        engine = SimulationEngine()
        prov.attach(engine)
        engine.at(10.0, lambda e: cluster.crash_node("n0", e.now))
        engine.run_until(20.0)
        # The standby was promoted well before a cold boot could land.
        assert cluster.node("spot-0").health is NodeHealth.UP
        assert cluster.up_count == 2
        assert prov.counts["warm_promoted"] == 1

    def test_cold_boot_takes_base_latency(self, toy_profile):
        cluster = make_cluster(toy_profile)
        prov = make_provisioner(
            cluster, toy_profile, warm_pool_size=0,
            latency_base=30.0, latency_jitter=0.0, warming_seconds=5.0,
        )
        engine = SimulationEngine()
        prov.attach(engine)
        engine.at(0.0, lambda e: cluster.crash_node("n0", e.now))
        engine.run_until(100.0)
        warm = [e for e in prov.events if e.state == "warm"]
        assert len(warm) == 1
        # The crash lands after the t=0 maintenance tick, so the request
        # fires at the next tick (t=5); ready base + warming later.
        assert warm[0].time == pytest.approx(40.0)
        assert cluster.up_count == 2

    def test_provision_failures_retry_with_backoff(self, toy_profile):
        cluster = make_cluster(toy_profile)
        prov = make_provisioner(
            cluster, toy_profile, warm_pool_size=0,
            latency_base=10.0, latency_jitter=0.0,
            retry_base=5.0, retry_factor=2.0, max_retries=3,
        )
        engine = SimulationEngine()
        prov.attach(engine)
        prov.inject_provision_fail(0.0, 30.0)
        engine.at(0.0, lambda e: cluster.crash_node("n0", e.now))
        engine.run_until(300.0)
        assert prov.counts["retried"] >= 1
        assert prov.counts["failed"] == 0
        assert cluster.up_count == 2  # recovered after the window

    def test_retries_exhaust_into_failed(self, toy_profile):
        cluster = make_cluster(toy_profile)
        prov = make_provisioner(
            cluster, toy_profile, warm_pool_size=0,
            latency_base=10.0, latency_jitter=0.0,
            retry_base=1.0, max_retries=2, check_interval=1000.0,
        )
        engine = SimulationEngine()
        prov.attach(engine)
        prov.inject_provision_fail(0.0, float("inf"))
        engine.at(0.0, lambda e: prov.request_node(e.now),
                  priority=LIFECYCLE_PRIORITY)
        engine.run_until(500.0)
        assert prov.counts["failed"] == 1
        assert prov.counts["retried"] == 2
        assert prov.pending_count == 0

    def test_stall_window_delays_completion(self, toy_profile):
        cluster = make_cluster(toy_profile)
        prov = make_provisioner(
            cluster, toy_profile, warm_pool_size=0,
            latency_base=10.0, latency_jitter=0.0, warming_seconds=0.0,
            check_interval=1000.0,
        )
        engine = SimulationEngine()
        prov.attach(engine)
        prov.inject_provision_stall(0.0, 11.0, 25.0)
        engine.at(0.0, lambda e: prov.request_node(e.now),
                  priority=LIFECYCLE_PRIORITY)
        engine.run_until(100.0)
        warm = [e for e in prov.events if e.state == "warm"]
        assert prov.counts["stalled"] == 1
        assert warm and warm[0].time == pytest.approx(35.0)  # 10 + 25

    def test_request_times_out(self, toy_profile):
        cluster = make_cluster(toy_profile)
        prov = make_provisioner(
            cluster, toy_profile, warm_pool_size=0,
            latency_base=10.0, latency_jitter=0.0, timeout=30.0,
            retry_base=60.0, max_retries=10, check_interval=1000.0,
        )
        engine = SimulationEngine()
        prov.attach(engine)
        prov.inject_provision_fail(0.0, float("inf"))
        engine.at(0.0, lambda e: prov.request_node(e.now),
                  priority=LIFECYCLE_PRIORITY)
        engine.run_until(500.0)
        assert prov.counts["timed_out"] == 1
        assert prov.pending_count == 0

    def test_max_pending_rejects_loudly(self, toy_profile):
        cluster = make_cluster(toy_profile)
        prov = make_provisioner(
            cluster, toy_profile, warm_pool_size=0, max_pending=1,
            check_interval=1000.0,
        )
        engine = SimulationEngine()
        prov.attach(engine)
        assert prov.request_node(0.0) is not None
        assert prov.request_node(0.0) is None
        assert prov.counts["rejected"] == 1

    def test_warm_pool_exhaust_withdraws_and_suppresses(self, toy_profile):
        cluster = make_cluster(toy_profile)
        prov = make_provisioner(
            cluster, toy_profile, warm_pool_size=1,
            latency_base=10.0, latency_jitter=0.0, warming_seconds=1.0,
            check_interval=5.0,
        )
        engine = SimulationEngine()
        prov.attach(engine)
        taken = prov.exhaust_warm_pool(0.0, duration=50.0)
        assert taken == 1
        assert cluster.node("spot-0").health is NodeHealth.DOWN
        engine.run_until(40.0)
        # Refills stay suppressed inside the window...
        assert prov.counts["requested"] == 0
        engine.run_until(200.0)
        # ...and resume after it: the pool is rebuilt.
        assert prov.ready_count == 1
        assert prov.counts["withdrawn"] == 1

    def test_digest_replays_byte_identically(self, toy_profile):
        def run():
            cluster = make_cluster(toy_profile)
            prov = make_provisioner(
                cluster, toy_profile, seed=3, warm_pool_size=1
            )
            engine = SimulationEngine()
            prov.attach(engine)
            engine.at(10.0, lambda e: cluster.crash_node("n0", e.now))
            engine.at(30.0, lambda e: prov.reclaim(
                "n1", e.now, notice=20.0
            ))
            engine.run_until(300.0)
            return prov.digest()

        assert run() == run()


class TestReclaim:
    def start_session(self, cluster, toy_spec, rid=1):
        return cluster.dispatch(
            make_request(toy_spec, rid, "full"), time=0, seed=rid
        )

    def test_notice_window_keeps_sessions_and_blocks_dispatch(
        self, toy_spec, toy_profile
    ):
        cluster = make_cluster(toy_profile)
        node = self.start_session(cluster, toy_spec)
        assert cluster.begin_reclaim(node.node_id, 10.0, notice=60.0)
        assert node.health is NodeHealth.RECLAIM_NOTICE
        assert node.n_running == 1  # sessions live through the notice
        other = cluster.dispatch(
            make_request(toy_spec, 2, "full"), time=11, seed=2
        )
        assert other is None or other.node_id != node.node_id

    def test_begin_reclaim_refuses_down_and_warming(self, toy_profile):
        cluster = make_cluster(toy_profile)
        cluster.crash_node("n0", 0.0)
        assert not cluster.begin_reclaim("n0", 1.0, notice=10.0)
        warm = FleetNode("w0", CoCGStrategy(), {"toygame": toy_profile})
        warm.warm(0.0)
        cluster.add_node(warm)
        assert not cluster.begin_reclaim("w0", 1.0, notice=10.0)

    def test_finish_reclaim_requeues_survivors(self, toy_spec, toy_profile):
        cluster = make_cluster(toy_profile)
        node = self.start_session(cluster, toy_spec)
        cluster.begin_reclaim(node.node_id, 10.0, notice=30.0)
        killed = cluster.finish_reclaim(node.node_id, 40.0, fault_index=2)
        assert len(killed) == 1
        assert node.health is NodeHealth.DOWN
        assert cluster.requeues == 1
        assert cluster.reclaimed_nodes == 1
        assert cluster.queue_depth == 1
        assert cluster.unaccounted_sessions() == 0

    def test_finish_reclaim_dead_letters_with_reason_and_index(
        self, toy_spec, toy_profile
    ):
        cluster = make_cluster(toy_profile)
        node = self.start_session(cluster, toy_spec)
        cluster.begin_reclaim(node.node_id, 10.0, notice=30.0)
        cluster.finish_reclaim(
            node.node_id, 40.0, requeue=False, fault_index=5
        )
        (dead,) = cluster.dead_letters
        assert dead.reason == "reclaim"
        assert dead.fault_index == 5
        assert cluster.unaccounted_sessions() == 0

    def test_provisioner_reclaim_replaces_capacity(
        self, toy_spec, toy_profile
    ):
        cluster = make_cluster(toy_profile)
        prov = make_provisioner(
            cluster, toy_profile, warm_pool_size=1,
            latency_base=10.0, latency_jitter=0.0,
        )
        engine = SimulationEngine()
        prov.attach(engine)
        self.start_session(cluster, toy_spec)
        engine.at(10.0, lambda e: prov.reclaim("n0", e.now, notice=20.0))
        engine.run_until(120.0)
        assert cluster.node("n0").health is NodeHealth.DOWN
        assert cluster.up_count == 2  # standby promoted to cover the loss
        assert prov.counts["reclaimed"] == 1
        states = [e.state for e in prov.events]
        assert "reclaim-notice" in states and "reclaimed" in states
        assert cluster.unaccounted_sessions() == 0


class TestDrainRetryInterplay:
    def test_no_double_requeue_while_backoff_pending(
        self, toy_spec, toy_profile
    ):
        cluster = make_cluster(toy_profile)
        request = make_request(toy_spec, 9, "full")
        node = cluster.dispatch(request, time=0, seed=9)
        # The same request is already waiting out a retry backoff (as
        # after a prior displacement)...
        cluster.submit(request, time=5.0)
        depth_before = cluster.queue_depth
        # ...when a reclaim drain kills its running session.
        cluster.begin_reclaim(node.node_id, 6.0, notice=1.0)
        cluster.finish_reclaim(node.node_id, 7.0)
        assert cluster.queue_depth == depth_before  # not enqueued twice
        assert cluster.requeue_dupes == 1
        assert cluster.requeues == 0
        assert cluster.unaccounted_sessions() == 0

    def test_no_double_requeue_through_gateway(self, toy_spec, toy_profile):
        cluster = make_cluster(toy_profile)
        gateway = AdmissionGateway(cluster)
        cluster.attach_gateway(gateway)
        request = make_request(toy_spec, 9, "full")
        node = cluster.dispatch(request, time=0, seed=9)
        cluster.submit(request, time=5.0)  # queued in the gateway
        cluster.kill_session(6.0, session="toygame-")
        assert cluster.requeue_dupes == 1
        assert gateway.has_pending(9)
        assert not gateway.has_pending(10)
        _ = node

    def test_crash_requeue_carries_fault_index_to_dead_letter(
        self, toy_spec, toy_profile
    ):
        cluster = make_cluster(toy_profile, n=1, max_retries=1)
        request = make_request(toy_spec, 3, "full")
        cluster.dispatch(request, time=0, seed=3)
        cluster.crash_node("n0", 10.0, fault_index=4)
        t = 10.0
        while cluster.queue_depth and t < 500:
            cluster.pump(t, seed_for=lambda r, inc: 1)
            t += 5.0
        (dead,) = cluster.dead_letters
        assert dead.reason == "retries exhausted"
        assert dead.fault_index == 4
        assert cluster.unaccounted_sessions() == 0


class TestBackpressureCoupling:
    def make_gated(self, toy_profile, **gw):
        cluster = make_cluster(toy_profile)
        gateway = AdmissionGateway(
            cluster,
            config=GatewayConfig(queue_capacity=8, capacity_floor=0.5, **gw),
        )
        cluster.attach_gateway(gateway)
        return cluster, gateway

    def test_floor_shrinks_effective_capacity(self, toy_profile):
        cluster, gateway = self.make_gated(toy_profile)
        assert gateway.effective_capacity() == 8
        cluster.crash_node("n0", 0.0)
        cluster.crash_node("n1", 0.0)
        assert cluster.usable_fraction() == 0.0
        assert gateway.effective_capacity() == 1
        cluster.recover_node("n0", 1.0)
        assert gateway.effective_capacity() == 8  # usable == floor again

    def test_backpressure_shed_is_explicit(self, toy_spec, toy_profile):
        cluster, gateway = self.make_gated(toy_profile)
        cluster.crash_node("n0", 0.0)
        cluster.crash_node("n1", 0.0)
        first = gateway.offer(make_request(toy_spec, 1), time=1.0)
        second = gateway.offer(make_request(toy_spec, 2), time=1.0)
        assert first.accepted
        assert second.kind == "shed" and second.detail == "capacity floor"
        assert gateway.backpressure_sheds == 1

    def test_warm_promotion_releases_backpressure(self, toy_profile):
        cluster, gateway = self.make_gated(toy_profile)
        prov = make_provisioner(cluster, toy_profile, warm_pool_size=1)
        engine = SimulationEngine()
        prov.attach(engine)
        cluster.crash_node("n0", 0.0)
        cluster.crash_node("n1", 0.0)
        assert gateway.effective_capacity() == 1
        engine.run_until(10.0)  # maintenance promotes the standby
        assert cluster.up_count >= 1
        assert gateway.effective_capacity() == 8

    def test_floor_zero_is_off(self, toy_profile):
        cluster = make_cluster(toy_profile)
        gateway = AdmissionGateway(
            cluster, config=GatewayConfig(queue_capacity=8)
        )
        cluster.attach_gateway(gateway)
        cluster.crash_node("n0", 0.0)
        cluster.crash_node("n1", 0.0)
        assert gateway.effective_capacity() == 8

    def test_floor_validation(self):
        with pytest.raises(ValueError):
            GatewayConfig(capacity_floor=1.5)
        with pytest.raises(ValueError):
            GatewayConfig(capacity_floor=-0.1)


class TestElasticExperiment:
    HORIZON = 300

    def run_once(self, toy_spec, toy_profile, *, plan=None, prov_seed=3):
        cluster = make_cluster(toy_profile)
        prov = make_provisioner(
            cluster, toy_profile, seed=prov_seed, warm_pool_size=1,
            latency_base=10.0, latency_jitter=5.0,
        )
        result = FleetExperiment(
            cluster,
            [toy_spec],
            horizon=self.HORIZON,
            rate_per_minute=4.0,
            seed=3,
            fault_plan=plan,
            provisioner=prov,
        ).run()
        return result, cluster, prov

    def storm(self):
        return reclaim_storm_plan(
            self.HORIZON, seed=3, nodes=("n0", "n1"), notice=30.0
        )

    def test_reclamation_storm_replays_byte_identically(
        self, toy_spec, toy_profile
    ):
        a, _, _ = self.run_once(toy_spec, toy_profile, plan=self.storm())
        b, _, _ = self.run_once(toy_spec, toy_profile, plan=self.storm())
        assert a.telemetry_digest == b.telemetry_digest
        assert a.session_accounting == b.session_accounting

    def test_reclamation_storm_leaves_zero_unaccounted_sessions(
        self, toy_spec, toy_profile
    ):
        result, cluster, prov = self.run_once(
            toy_spec, toy_profile, plan=self.storm()
        )
        assert result.unaccounted_sessions == 0
        assert cluster.reclaimed_nodes == 2
        assert result.session_accounting["evicted"] > 0
        assert prov.counts["warm_promoted"] >= 1
        # The fleet recovered: replacement capacity came up.
        assert cluster.up_count >= 1

    def test_lifecycle_events_are_part_of_the_digest(
        self, toy_spec, toy_profile
    ):
        # Different provisioner seeds change only provision latencies;
        # the digest must see the difference.
        a, _, _ = self.run_once(
            toy_spec, toy_profile, plan=self.storm(), prov_seed=3
        )
        b, _, _ = self.run_once(
            toy_spec, toy_profile, plan=self.storm(), prov_seed=4
        )
        assert a.telemetry_digest != b.telemetry_digest

    def test_provisioner_stats_surface_in_the_result(
        self, toy_spec, toy_profile
    ):
        result, _, _ = self.run_once(toy_spec, toy_profile, plan=self.storm())
        assert result.provisioner_stats["reclaimed"] == 2
        assert result.provisioner_stats["requested"] >= 1

    def test_injector_spot_reclaim_attributes_dead_letters(
        self, toy_spec, toy_profile
    ):
        plan = FaultPlan(seed=3).spot_reclaim(
            60.0, "n0", notice=10.0, requeue=False
        )
        cluster = make_cluster(toy_profile)
        result = FleetExperiment(
            cluster, [toy_spec], horizon=self.HORIZON,
            rate_per_minute=6.0, seed=3, fault_plan=plan,
        ).run()
        reclaim_dead = [
            d for d in result.dead_letters if d.reason == "reclaim"
        ]
        assert reclaim_dead, "the reclaimed node hosted no session to drain"
        assert all(d.fault_index == 0 for d in reclaim_dead)
        assert result.unaccounted_sessions == 0

    def test_provision_faults_without_provisioner_are_noops(
        self, toy_spec, toy_profile
    ):
        plan = (
            FaultPlan(seed=3)
            .provision_fail(10.0, duration=30.0)
            .warm_pool_exhaust(20.0, duration=30.0)
        )
        cluster = make_cluster(toy_profile)
        result = FleetExperiment(
            cluster, [toy_spec], horizon=120, rate_per_minute=2.0,
            seed=3, fault_plan=plan,
        ).run()
        assert any("no-op" in event for event in result.fault_events)
        assert result.unaccounted_sessions == 0


class TestNodeLookupAndDispatchOrder:
    def test_key_error_lists_lifecycle_states(self, toy_profile):
        cluster = make_cluster(toy_profile)
        cluster.crash_node("n1", 0.0)
        with pytest.raises(KeyError) as err:
            cluster.node("ghost")
        message = str(err.value)
        assert "ghost" in message
        assert "n0=up" in message and "n1=down" in message

    @pytest.mark.parametrize("policy", ["first-fit", "best-fit", "round-robin"])
    def test_warming_and_reclaim_notice_are_non_candidates(
        self, toy_profile, policy
    ):
        nodes = [
            FleetNode(f"n{i}", CoCGStrategy(), {"toygame": toy_profile})
            for i in range(4)
        ]
        nodes[1].warm(0.0)
        nodes[2].reclaim_notice(0.0, notice=60.0)
        nodes[3].drain(0.0)
        for offset in range(3):
            order = dispatch_order(nodes, policy, rr_offset=offset)
            assert [n.node_id for n in order] == ["n0"]
