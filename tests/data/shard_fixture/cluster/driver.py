"""Two partitioned entry streams sharing one read-only helper."""

from repro.util.effects import shard_entry

_PRIO_DRIVE = -10


@shard_entry("east")
def run_east(engine, fleet):
    engine.at(0.0, lambda e: None, priority=_PRIO_DRIVE)
    return plan_step(fleet)


@shard_entry("west")
def run_west(engine, fleet):
    return plan_step(fleet)


def plan_step(fleet):
    return sorted(fleet)
