"""A conventional fleet entry whose tally blocks partitioning."""

WINDOW = {"seen": 0}


def pump(queue):
    for _ in queue:
        tally()
    return WINDOW["seen"]


def tally():
    WINDOW["seen"] += 1
