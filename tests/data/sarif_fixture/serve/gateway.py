"""Fixture: one CG010 finding (unordered iteration into dispatch)."""

from util.helpers import fanout

__all__ = ["drain"]


def drain(queues: dict) -> None:
    """Drain every queue (deliberately order-fragile)."""
    for name, q in queues.items():
        fanout(q)
