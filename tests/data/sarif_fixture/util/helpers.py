"""Fixture helper reaching an ordering-sensitive sink."""

__all__ = ["fanout", "dispatch_order"]


def fanout(q: list) -> list:
    """Forward one queue to the dispatcher."""
    return dispatch_order(q)


def dispatch_order(q: list) -> list:
    """The ordering-sensitive sink."""
    return list(q)
