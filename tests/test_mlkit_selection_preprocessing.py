"""Tests for model_selection and preprocessing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mlkit.model_selection import KFold, train_test_split
from repro.mlkit.preprocessing import LabelEncoder, OneHotEncoder, StandardScaler


class TestTrainTestSplit:
    def test_sizes(self, rng):
        X = rng.normal(size=(100, 3))
        y = rng.integers(0, 2, size=100)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.25, seed=0)
        assert len(Xte) == 25 and len(Xtr) == 75
        assert len(ytr) == 75 and len(yte) == 25

    def test_partition_is_exact(self, rng):
        X = np.arange(20).reshape(20, 1).astype(float)
        y = np.arange(20)
        Xtr, Xte, ytr, yte = train_test_split(X, y, seed=1)
        together = np.sort(np.concatenate([ytr, yte]))
        np.testing.assert_array_equal(together, np.arange(20))

    def test_deterministic(self, rng):
        X = rng.normal(size=(30, 2))
        y = rng.integers(0, 3, size=30)
        a = train_test_split(X, y, seed=7)[3]
        b = train_test_split(X, y, seed=7)[3]
        np.testing.assert_array_equal(a, b)

    def test_stratify_keeps_rare_class_on_both_sides(self, rng):
        y = np.array([0] * 45 + [1] * 5)
        X = rng.normal(size=(50, 2))
        _, _, ytr, yte = train_test_split(X, y, test_size=0.25, seed=0, stratify=True)
        assert 1 in ytr and 1 in yte

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((1, 1)), np.zeros(1))

    def test_bad_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((10, 1)), np.zeros(10), test_size=1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((10, 1)), np.zeros(9))


class TestKFold:
    def test_folds_partition(self):
        kf = KFold(4, seed=0)
        seen = []
        for train, test in kf.split(22):
            assert set(train) & set(test) == set()
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(22))

    def test_fold_count(self):
        assert len(list(KFold(5, seed=0).split(50))) == 5

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(5).split(3))

    def test_invalid_splits(self):
        with pytest.raises(ValueError):
            KFold(1)

    def test_no_shuffle_is_contiguous(self):
        folds = list(KFold(2, shuffle=False).split(4))
        np.testing.assert_array_equal(folds[0][1], [0, 1])


class TestLabelEncoder:
    def test_roundtrip(self):
        enc = LabelEncoder().fit(["b", "a", "c", "a"])
        codes = enc.transform(["a", "b", "c"])
        np.testing.assert_array_equal(codes, [0, 1, 2])
        np.testing.assert_array_equal(enc.inverse_transform(codes), ["a", "b", "c"])

    def test_unseen_label(self):
        enc = LabelEncoder().fit(["a"])
        with pytest.raises(ValueError):
            enc.transform(["z"])

    def test_out_of_range_codes(self):
        enc = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError):
            enc.inverse_transform([5])

    def test_empty_fit(self):
        with pytest.raises(ValueError):
            LabelEncoder().fit([])

    def test_n_classes(self):
        assert LabelEncoder().fit([3, 1, 3]).n_classes == 2


class TestOneHotEncoder:
    def test_shape_and_content(self):
        X = np.array([[0, "x"], [1, "y"], [0, "y"]], dtype=object)
        enc = OneHotEncoder().fit(X)
        out = enc.transform(X)
        assert out.shape == (3, 4)
        np.testing.assert_array_equal(out.sum(axis=1), [2, 2, 2])

    def test_unseen_value_encodes_to_zeros(self):
        enc = OneHotEncoder().fit(np.array([[0], [1]]))
        out = enc.transform(np.array([[9]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0]])

    def test_n_features_out(self):
        enc = OneHotEncoder().fit(np.array([[0, 5], [1, 5]]))
        assert enc.n_features_out == 3

    def test_column_mismatch(self):
        enc = OneHotEncoder().fit(np.array([[0, 1]]))
        with pytest.raises(ValueError):
            enc.transform(np.array([[0]]))


class TestStandardScaler:
    def test_zero_mean_unit_var(self, rng):
        X = rng.normal(5, 3, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0, atol=1e-9)
        np.testing.assert_allclose(Z.std(axis=0), 1, atol=1e-9)

    def test_constant_column_safe(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        np.testing.assert_allclose(Z[:, 0], 0)

    def test_inverse_transform_roundtrip(self, rng):
        X = rng.normal(size=(50, 3))
        sc = StandardScaler().fit(X)
        np.testing.assert_allclose(sc.inverse_transform(sc.transform(X)), X, atol=1e-9)

    def test_feature_mismatch(self, rng):
        sc = StandardScaler().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError):
            sc.transform(rng.normal(size=(5, 2)))


@settings(max_examples=30, deadline=None)
@given(n=st.integers(4, 200), frac=st.floats(0.1, 0.9))
def test_split_sizes_property(n, frac):
    """Property: split sizes sum to n and respect the fraction ±1."""
    X = np.zeros((n, 1))
    y = np.arange(n)
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=frac, seed=0)
    assert len(Xtr) + len(Xte) == n
    assert 1 <= len(Xte) <= n - 1
    assert abs(len(Xte) - n * frac) <= 1
