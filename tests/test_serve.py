"""Tests for the ``repro.serve`` subsystem and its batching contracts.

Covers the gateway (queues, shedding, patience, rate limiting), the
rollout cache, the SLO tracker, load generation determinism, the single
candidate-order/tie-break policy, and the load-bearing equivalence
property: batched Algorithm-1 evaluation returns decisions identical to
the sequential path.
"""

import numpy as np
import pytest

from repro.baselines import CoCGStrategy
from repro.cluster import ClusterScheduler, FleetNode
from repro.cluster.fleet import NodeHealth, dispatch_order
from repro.core.distributor import AdmissionDecision, Distributor
from repro.games.player import PlayerModel
from repro.platform_.resources import N_DIMS, ResourceVector
from repro.serve import (
    AdmissionGateway,
    GatewayConfig,
    OpenLoopLoadGen,
    RolloutCache,
    SloTracker,
    TokenBucket,
    percentile_nearest_rank,
)
from repro.serve.loadgen import ClosedLoopLoadGen
from repro.workloads.requests import GameRequest, PoissonArrivals


def uniform(value):
    return ResourceVector.from_array([value] * N_DIMS)


def make_request(spec, rid=0):
    player = PlayerModel(f"p{rid}", spec.category, seed=0)
    return GameRequest(
        spec, spec.scripts[0].name, player, arrival=0.0, request_id=rid
    )


# ----------------------------------------------------------------------
# TokenBucket
# ----------------------------------------------------------------------

class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(1.0, 3)
        assert all(bucket.try_take(0.0) for _ in range(3))
        assert not bucket.try_take(0.0)

    def test_refills_on_sim_time(self):
        bucket = TokenBucket(2.0, 4)
        for _ in range(4):
            bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        # 1 second at 2 tokens/s -> exactly two more takes.
        assert bucket.try_take(1.0)
        assert bucket.try_take(1.0)
        assert not bucket.try_take(1.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(100.0, 5)
        assert bucket.peek(1000.0) == 5.0

    def test_replay_determinism(self):
        def drain(times):
            bucket = TokenBucket(0.5, 2)
            return [bucket.try_take(t) for t in times]

        times = [0.0, 0.0, 0.0, 3.0, 3.0, 10.0]
        assert drain(times) == drain(times)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 1)
        with pytest.raises(ValueError):
            TokenBucket(1.0, 0)


# ----------------------------------------------------------------------
# RolloutCache
# ----------------------------------------------------------------------

class TestRolloutCache:
    def test_miss_then_hit(self):
        cache = RolloutCache()
        assert cache.get("s0", 0, 3) is None
        peaks = [uniform(1.0)] * 3
        cache.put("s0", 0, 3, peaks)
        assert cache.get("s0", 0, 3) is peaks
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_epoch_and_horizon_key_separately(self):
        cache = RolloutCache()
        cache.put("s0", 0, 3, [uniform(1.0)])
        assert cache.get("s0", 1, 3) is None
        assert cache.get("s0", 0, 5) is None

    def test_invalidate_drops_every_epoch_of_a_session(self):
        cache = RolloutCache()
        cache.put("s0", 0, 3, [uniform(1.0)])
        cache.put("s0", 1, 3, [uniform(1.0)])
        cache.put("s1", 0, 3, [uniform(2.0)])
        cache.invalidate("s0")
        assert cache.invalidations == 2
        assert cache.get("s0", 1, 3) is None
        assert cache.get("s1", 0, 3) is not None

    def test_fifo_eviction_at_capacity(self):
        cache = RolloutCache(max_entries=2)
        cache.put("a", 0, 3, [uniform(1.0)])
        cache.put("b", 0, 3, [uniform(1.0)])
        cache.put("c", 0, 3, [uniform(1.0)])
        assert cache.evictions == 1
        assert len(cache) == 2
        assert cache.get("a", 0, 3) is None  # oldest gone
        assert cache.get("b", 0, 3) is not None

    def test_validation_and_stats(self):
        with pytest.raises(ValueError):
            RolloutCache(max_entries=0)
        stats = RolloutCache().stats()
        assert stats["entries"] == 0 and stats["hit_rate"] == 0.0


# ----------------------------------------------------------------------
# SLO tracker
# ----------------------------------------------------------------------

class TestSlo:
    def test_nearest_rank_percentiles(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile_nearest_rank(values, 0.0) == 1.0
        assert percentile_nearest_rank(values, 50.0) == 3.0
        assert percentile_nearest_rank(values, 90.0) == 5.0
        assert percentile_nearest_rank(values, 100.0) == 5.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile_nearest_rank([], 50.0)
        with pytest.raises(ValueError):
            percentile_nearest_rank([1.0], 101.0)

    def test_summary_counts_every_outcome(self):
        slo = SloTracker()
        slo.record("FPS", "admitted", 2.0)
        slo.record("FPS", "admitted", 4.0)
        slo.record("FPS", "shed", 0.0)
        slo.record("MOBA", "dead-lettered", 30.0)
        s = slo.summary("FPS")
        assert s.count == 3
        assert s.outcomes == {"admitted": 2, "shed": 1}
        assert s.wait_max == 4.0
        assert slo.outcome_totals() == {
            "admitted": 2, "shed": 1, "dead-lettered": 1
        }
        assert slo.categories == ["FPS", "MOBA"]
        assert len(slo.summary_lines()) == 2

    def test_missing_category_and_negative_wait(self):
        slo = SloTracker()
        with pytest.raises(KeyError):
            slo.summary("nope")
        with pytest.raises(ValueError):
            slo.record("FPS", "admitted", -1.0)


# ----------------------------------------------------------------------
# Gateway behaviour on a real (toy) fleet
# ----------------------------------------------------------------------

def make_gateway(toy_profile, *, n_nodes=2, policy="round-robin", config=None):
    nodes = [
        FleetNode(f"n{i}", CoCGStrategy(), {"toygame": toy_profile}, seed=i)
        for i in range(n_nodes)
    ]
    cluster = ClusterScheduler(nodes, policy=policy)
    gateway = AdmissionGateway(cluster, config=config)
    cluster.attach_gateway(gateway)
    return cluster, gateway


class TestAdmissionGateway:
    def test_offer_queues_and_records_event(self, toy_spec, toy_profile):
        _, gateway = make_gateway(toy_profile)
        outcome = gateway.offer(make_request(toy_spec, rid=0), time=0.0)
        assert outcome.accepted and outcome.kind == "queued"
        assert gateway.depth == 1
        assert gateway.depth_of(toy_spec.category.value) == 1
        assert gateway.telemetry.gateway_events[0].outcome == "queued"

    def test_full_queue_sheds(self, toy_spec, toy_profile):
        config = GatewayConfig(queue_capacity=2)
        _, gateway = make_gateway(toy_profile, config=config)
        for rid in range(2):
            assert gateway.offer(make_request(toy_spec, rid=rid), time=0.0).accepted
        outcome = gateway.offer(make_request(toy_spec, rid=2), time=0.0)
        assert outcome.kind == "shed"
        assert gateway.shed == 1 and gateway.depth == 2
        assert gateway.telemetry.gateway_events[-1].outcome == "shed"

    def test_pump_admits_and_clears_queue(self, toy_spec, toy_profile):
        cluster, gateway = make_gateway(toy_profile)
        cluster.submit(make_request(toy_spec, rid=0), time=0.0)
        started = cluster.pump(0.0, lambda req, inc: 7)
        assert [r.request_id for r in started] == [0]
        assert gateway.admitted == 1 and gateway.depth == 0
        assert gateway.telemetry.gateway_events[-1].outcome == "admitted"
        assert cluster.nodes[0].n_running + cluster.nodes[1].n_running == 1

    def test_patience_dead_letters(self, toy_spec, toy_profile):
        config = GatewayConfig(max_queue_seconds=10.0)
        cluster, gateway = make_gateway(toy_profile, n_nodes=1, config=config)
        # Crash the only node so nothing can ever start.
        cluster.nodes[0].health = NodeHealth.DOWN
        gateway.offer(make_request(toy_spec, rid=0), time=0.0)
        gateway.pump(5.0, lambda req, inc: 0)
        assert gateway.dead_lettered == 0
        gateway.pump(11.0, lambda req, inc: 0)
        assert gateway.dead_lettered == 1 and gateway.depth == 0
        assert len(cluster.dead_letters) == 1
        assert "patience" in cluster.dead_letters[0].reason

    def test_retries_exhausted_dead_letters(self, toy_spec, toy_profile):
        config = GatewayConfig(max_retries=2, max_queue_seconds=1e9)
        cluster, gateway = make_gateway(toy_profile, n_nodes=1, config=config)
        cluster.nodes[0].health = NodeHealth.DOWN
        gateway.offer(make_request(toy_spec, rid=0), time=0.0)
        for k in range(1, 4):
            gateway.pump(float(k), lambda req, inc: 0)
        assert gateway.dead_lettered == 1
        assert "retries" in cluster.dead_letters[0].reason

    def test_token_bucket_throttles_round(self, toy_spec, toy_profile):
        config = GatewayConfig(rate_per_second=1.0, burst=2)
        cluster, gateway = make_gateway(toy_profile, config=config)
        for rid in range(5):
            gateway.offer(make_request(toy_spec, rid=rid), time=0.0)
        started = gateway.pump(0.0, lambda req, inc: 0)
        # Two tokens -> at most two dispatch attempts this round.
        assert len(started) <= 2
        assert gateway.throttled_rounds == 1
        assert gateway.depth == 5 - len(started)

    def test_stats_shape(self, toy_profile):
        _, gateway = make_gateway(toy_profile)
        stats = gateway.stats()
        assert set(stats) == {
            "queued", "admitted", "shed", "dead_lettered", "deferrals",
            "depth", "throttled_rounds", "backpressure_sheds",
        }

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GatewayConfig(queue_capacity=0)
        with pytest.raises(ValueError):
            GatewayConfig(max_queue_seconds=0.0)
        with pytest.raises(ValueError):
            GatewayConfig(max_retries=-1)

    def test_gateway_events_change_the_digest(self, toy_spec, toy_profile):
        _, gw_a = make_gateway(toy_profile)
        _, gw_b = make_gateway(toy_profile)
        empty = gw_b.telemetry.digest()
        gw_a.offer(make_request(toy_spec, rid=0), time=0.0)
        assert gw_a.telemetry.digest() != empty


# ----------------------------------------------------------------------
# Batched dispatch == naive dispatch (satellite: equivalence on a fleet)
# ----------------------------------------------------------------------

class TestBatchedDispatchEquivalence:
    def drive(self, toy_spec, toy_profile, *, batched):
        config = GatewayConfig(
            queue_capacity=16, rate_per_second=2.0, burst=8,
            max_queue_seconds=120.0, micro_batching=batched,
        )
        cluster, gateway = make_gateway(
            toy_profile, n_nodes=2, policy="round-robin", config=config
        )
        arrivals = PoissonArrivals(
            [toy_spec], rate_per_minute=20.0, seed=42, horizon=120.0
        )
        for request in arrivals.requests:
            cluster.submit(request, time=request.arrival)
        for t in range(0, 121, 5):
            cluster.pump(float(t), lambda req, inc: 1000 + req.request_id)
            cluster.control(float(t))
        return gateway

    def test_outcomes_identical(self, toy_spec, toy_profile):
        naive = self.drive(toy_spec, toy_profile, batched=False)
        batched = self.drive(toy_spec, toy_profile, batched=True)
        assert naive.stats() == batched.stats()
        assert naive.telemetry.digest() == batched.telemetry.digest()
        # The batched run actually shared evaluation passes.
        assert batched.batcher.rounds > 0


# ----------------------------------------------------------------------
# Load generation
# ----------------------------------------------------------------------

class TestOpenLoopLoadGen:
    def test_deterministic_stream(self, toy_spec):
        def build():
            gen = OpenLoopLoadGen(
                [toy_spec], rate_per_second=5.0, seed=9, horizon=200.0
            )
            return [(r.request_id, r.arrival, r.script) for r in gen.requests]

        assert build() == build()

    def test_stream_local_sequential_ids(self, toy_spec):
        gen = OpenLoopLoadGen(
            [toy_spec], rate_per_second=5.0, seed=9, horizon=200.0
        )
        assert [r.request_id for r in gen.requests] == list(range(len(gen)))

    def test_due_is_a_half_open_window(self, toy_spec):
        gen = OpenLoopLoadGen(
            [toy_spec], rate_per_second=5.0, seed=9, horizon=100.0
        )
        windows = [gen.due(float(t), float(t + 10)) for t in range(0, 100, 10)]
        assert sum(len(w) for w in windows) == len(gen)
        assert [r.request_id for w in windows for r in w] == list(range(len(gen)))

    def test_player_pool_is_bounded(self, toy_spec):
        gen = OpenLoopLoadGen(
            [toy_spec], rate_per_second=5.0, seed=9, horizon=400.0,
            player_pool=4,
        )
        players = {id(r.player) for r in gen.requests}
        assert len(players) <= 4

    def test_validation(self, toy_spec):
        with pytest.raises(ValueError):
            OpenLoopLoadGen([], rate_per_second=1.0)
        with pytest.raises(ValueError):
            OpenLoopLoadGen([toy_spec], rate_per_second=0.0)
        with pytest.raises(ValueError):
            OpenLoopLoadGen([toy_spec], player_pool=0)


class TestClosedLoopLoadGen:
    def test_holds_concurrency_target(self, toy_spec):
        gen = ClosedLoopLoadGen([toy_spec], seed=3, target=2)
        first = gen.pending(0.0)
        assert len(first) == 2
        for request in first:
            gen.started(request)
        assert gen.pending(1.0) == []
        gen.finished(toy_spec.name)
        assert len(gen.pending(2.0)) == 1
        assert gen.generated == 3


# ----------------------------------------------------------------------
# Satellite: per-stream request ids
# ----------------------------------------------------------------------

class TestStreamLocalRequestIds:
    def test_poisson_streams_are_independent(self, toy_spec):
        a = PoissonArrivals([toy_spec], rate_per_minute=30.0, seed=1,
                            horizon=300.0)
        b = PoissonArrivals([toy_spec], rate_per_minute=30.0, seed=1,
                            horizon=300.0)
        # Identical construction args give identical ids regardless of
        # what other streams were built earlier in the process.
        assert [r.request_id for r in a.requests] == \
               [r.request_id for r in b.requests]
        assert [r.request_id for r in a.requests] == list(range(len(a.requests)))


# ----------------------------------------------------------------------
# Satellite: the single candidate-order / tie-break policy
# ----------------------------------------------------------------------

class FakeNode:
    def __init__(self, node_id, headroom, health=NodeHealth.UP):
        self.node_id = node_id
        self.health = health
        self._headroom = headroom

    def headroom(self):
        return self._headroom


class TestDispatchOrder:
    def test_first_fit_preserves_construction_order(self):
        nodes = [FakeNode("b", 0.2), FakeNode("a", 0.9)]
        assert [n.node_id for n in dispatch_order(nodes, "first-fit")] == \
               ["b", "a"]

    def test_best_fit_fullest_first(self):
        nodes = [FakeNode("a", 0.9), FakeNode("b", 0.1), FakeNode("c", 0.5)]
        assert [n.node_id for n in dispatch_order(nodes, "best-fit")] == \
               ["b", "c", "a"]

    def test_best_fit_ties_break_on_node_id(self):
        nodes = [FakeNode("z", 0.5), FakeNode("a", 0.5), FakeNode("m", 0.5)]
        assert [n.node_id for n in dispatch_order(nodes, "best-fit")] == \
               ["a", "m", "z"]

    def test_round_robin_rotates_by_offset(self):
        nodes = [FakeNode(f"n{i}", 0.5) for i in range(3)]
        assert [n.node_id for n in
                dispatch_order(nodes, "round-robin", rr_offset=1)] == \
               ["n1", "n2", "n0"]
        assert [n.node_id for n in
                dispatch_order(nodes, "round-robin", rr_offset=3)] == \
               ["n0", "n1", "n2"]

    def test_down_nodes_are_excluded(self):
        nodes = [
            FakeNode("a", 0.5),
            FakeNode("b", 0.5, health=NodeHealth.DOWN),
            FakeNode("c", 0.5),
        ]
        assert [n.node_id for n in
                dispatch_order(nodes, "round-robin", rr_offset=1)] == \
               ["c", "a"]
        assert dispatch_order([nodes[1]], "round-robin") == []

    def test_candidate_order_advances_round_robin_cursor(self, toy_profile):
        cluster, _ = make_gateway(toy_profile, n_nodes=3)
        first = [n.node_id for n in cluster.candidate_order(None)]
        second = [n.node_id for n in cluster.candidate_order(None)]
        assert first == ["n0", "n1", "n2"]
        assert second == ["n1", "n2", "n0"]


# ----------------------------------------------------------------------
# Satellite: batched evaluation == sequential Algorithm 1 (property)
# ----------------------------------------------------------------------

class StaticTask:
    """A RunningTaskView with fixed allocation and peak schedule."""

    def __init__(self, alloc, peaks):
        self._alloc = alloc
        self._peaks = peaks

    @property
    def current_allocation(self):
        return self._alloc

    def predicted_peaks(self, horizon):
        return list(self._peaks)


class TestBatchedEvaluationProperty:
    def test_batch_decisions_match_sequential(self):
        rng = np.random.default_rng(7)
        for trial in range(50):
            capacity = uniform(float(rng.uniform(50.0, 120.0)))
            distributor = Distributor(
                capacity,
                horizon=int(rng.integers(1, 5)),
                overshoot_tolerance=float(rng.choice([0.0, 0.1, 0.25])),
            )
            running = [
                StaticTask(
                    uniform(float(rng.uniform(1.0, 30.0))),
                    [uniform(float(rng.uniform(1.0, 40.0)))
                     for _ in range(int(rng.integers(1, 4)))],
                )
                for _ in range(int(rng.integers(0, 4)))
            ]
            candidates = [
                (uniform(float(rng.uniform(1.0, 40.0))),
                 uniform(float(rng.uniform(1.0, 60.0))))
                for _ in range(int(rng.integers(1, 6)))
            ]
            sequential = [
                distributor.can_admit(entry, steady, running)
                for entry, steady in candidates
            ]
            batched = distributor.can_admit_batch(candidates, running)
            assert batched == sequential

    def test_batch_shares_one_rollout_per_task(self):
        calls = {"n": 0}

        class CountingTask(StaticTask):
            def predicted_peaks(self, horizon):
                calls["n"] += 1
                return super().predicted_peaks(horizon)

        distributor = Distributor(uniform(100.0), horizon=3)
        running = [
            CountingTask(uniform(5.0), [uniform(10.0)]) for _ in range(3)
        ]
        candidates = [(uniform(5.0), uniform(10.0))] * 10
        distributor.can_admit_batch(candidates, running)
        assert calls["n"] == 3  # one rollout per task, shared by all 10

    def test_decision_reasons_are_the_algorithm_1_strings(self):
        distributor = Distributor(uniform(10.0))
        empty = distributor.can_admit(uniform(1.0), uniform(5.0), [])
        assert empty.admitted and empty.reason == "empty server"
        too_big = distributor.can_admit(uniform(1.0), uniform(50.0), [])
        assert not too_big.admitted
        assert too_big.reason == "game exceeds server capacity alone"
        running = [StaticTask(uniform(9.5), [uniform(9.5)])]
        no_room = distributor.can_admit(uniform(1.0), uniform(1.0), running)
        assert not no_room.admitted
        assert no_room.reason == (
            "current co-consumption leaves no room even to boot"
        )
        collide = distributor.can_admit(uniform(0.2), uniform(5.0), running)
        assert not collide.admitted
        assert collide.reason == "predicted stage peaks collide beyond tolerance"
        fits = distributor.can_admit(uniform(0.2), uniform(0.2), running)
        assert fits.admitted
        assert fits.reason == "predicted co-consumption fits"
        assert isinstance(fits, AdmissionDecision)
