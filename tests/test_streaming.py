"""Tests for the GamingAnywhere-style streaming pipeline model."""

import numpy as np
import pytest

from repro.streaming.client import ClientModel
from repro.streaming.encoder import EncoderModel
from repro.streaming.network import NetworkModel
from repro.streaming.pipeline import StreamingPipeline


class TestEncoder:
    def test_cpu_scales_linearly_with_fps(self):
        enc = EncoderModel()
        a = enc.cpu_overhead(30)
        b = enc.cpu_overhead(60)
        assert b == pytest.approx(2 * a)

    def test_zero_fps_costs_nothing(self):
        r = EncoderModel().encode_second(0)
        assert r.cpu_overhead == 0 and r.per_frame_latency_ms == 0

    def test_better_codec_costs_more_cpu_less_bitrate(self):
        h264 = EncoderModel(codec="h264").encode_second(60)
        h265 = EncoderModel(codec="h265").encode_second(60)
        assert h265.cpu_overhead > h264.cpu_overhead
        assert h265.bitrate_mbps < h264.bitrate_mbps

    def test_resolution_scales_cost(self):
        hd = EncoderModel(width=1280, height=720).cpu_overhead(60)
        fhd = EncoderModel(width=1920, height=1080).cpu_overhead(60)
        assert fhd == pytest.approx(hd * (1920 * 1080) / (1280 * 720))

    def test_1080p60_h264_is_sub_percent(self):
        # Calibration regression: the paper-era testbed encodes a 1080p60
        # stream for well under 1 % of host CPU.
        assert EncoderModel().cpu_overhead(60) < 1.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EncoderModel(codec="vp9")
        with pytest.raises(ValueError):
            EncoderModel(width=0)
        with pytest.raises(ValueError):
            EncoderModel().encode_second(-1)


class TestNetwork:
    def test_meets_paper_3ms_target_at_light_load(self):
        net = NetworkModel(seed=0)
        assert net.meets_paper_target(offered_mbps=10)

    def test_latency_grows_with_load(self):
        net = NetworkModel(jitter_ms=0, loss_rate=0, seed=0)
        light = net.transmit_second(5).latency_ms
        heavy = net.transmit_second(95).latency_ms
        assert heavy > light

    def test_overload_drops(self):
        net = NetworkModel(bandwidth_mbps=50, jitter_ms=0, loss_rate=0, seed=0)
        s = net.transmit_second(80)
        assert s.dropped
        assert s.delivered_mbps == 50

    def test_deterministic_under_seed(self):
        a = NetworkModel(seed=5).transmit_second(10).latency_ms
        b = NetworkModel(seed=5).transmit_second(10).latency_ms
        assert a == b

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_mbps=0)
        with pytest.raises(ValueError):
            NetworkModel(loss_rate=1.0)
        with pytest.raises(ValueError):
            NetworkModel().transmit_second(-1)


class TestClient:
    def test_thin_clients_decode_slower(self):
        desktop = ClientModel(device="desktop").decode_latency_ms("h264")
        phone = ClientModel(device="phone").decode_latency_ms("h264")
        assert phone > desktop

    def test_total_includes_display(self):
        c = ClientModel(display_latency_ms=2.0)
        assert c.total_client_latency_ms("h264") == pytest.approx(
            c.decode_latency_ms("h264") + 2.0
        )

    def test_invalid_device(self):
        with pytest.raises(ValueError):
            ClientModel(device="toaster")


class TestPipeline:
    def test_glass_to_glass_budget_at_60fps(self):
        pipe = StreamingPipeline(network=NetworkModel(jitter_ms=0, seed=0))
        breakdown, cpu = pipe.stream_second(60)
        assert breakdown.interaction_grade(50.0)
        assert breakdown.total_ms > 0
        assert cpu > 0

    def test_breakdown_components_sum(self):
        pipe = StreamingPipeline(network=NetworkModel(jitter_ms=0, seed=0))
        b, _ = pipe.stream_second(30)
        assert b.total_ms == pytest.approx(
            b.capture_ms + b.encode_ms + b.network_ms + b.decode_ms + b.display_ms
        )

    def test_stalled_stream_is_free(self):
        b, cpu = StreamingPipeline().stream_second(0)
        assert b.total_ms == 0 and cpu == 0
