"""Tests for :mod:`repro.fleet` — ring, router, controller, certification.

The load-bearing properties:

* the hash ring balances keys, moves at most ~K/N of them on a region
  join/leave, and never touches Python's salted ``hash()``;
* an N=1 fleet-of-fleets reduces byte-for-byte to the classic single
  :class:`~repro.cluster.experiment.FleetExperiment` digest;
* same-seed N=4 double runs are byte-identical, and a fault plan scoped
  to one region leaves every other region's digest untouched (shard
  isolation);
* startup certification refuses a stale ``shardplan.json`` with exit 2.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster.experiment import FleetExperiment, default_arrivals
from repro.fleet import (
    FleetOfFleets,
    HashRing,
    RegionSpec,
    SessionRouter,
    certify_runtime,
    load_certificate,
    region_node_id,
    region_outage_plan,
    ring_point,
    runtime_entry_points,
)
from repro.fleet.controller import ID_STRIDE
from repro.serve.loadgen import ClosedLoopLoadGen, OpenLoopLoadGen
from repro.sim import ShardPlanError, run_partitioned
from repro.trace.harness import (
    RunConfig,
    build_cluster,
    build_profiles,
    experiment_seed,
)
from repro.util.rng import derive_seed, region_seed
from repro.workloads.requests import ContinuousBacklog, PoissonArrivals

BASE = RunConfig(
    games=("contra",),
    nodes=2,
    horizon=150,
    rate_per_minute=6.0,
    seed=7,
    players=2,
    sessions=2,
    gateway=False,
)


def _keys(n: int):
    """A deterministic uniform key population (no RNG needed)."""
    return [f"player-{i}" for i in range(n)]


# ---------------------------------------------------------------------------
# Hash ring: balance, stability, determinism
# ---------------------------------------------------------------------------

class TestHashRing:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_balance_equal_weights(self, n):
        ring = HashRing({f"r{i}": 1.0 for i in range(n)}, replicas=128)
        keys = _keys(8000)
        counts = {name: 0 for name in ring.regions}
        for key in keys:
            counts[ring.route(key)] += 1
        expected = len(keys) / n
        for name in ring.regions:
            # Consistent hashing balances statistically, not exactly;
            # 128 vnodes keeps every region within a factor ~2 of fair.
            assert counts[name] > expected * 0.45, (name, counts)
            assert counts[name] < expected * 2.2, (name, counts)

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_join_moves_bounded_fraction(self, n):
        ring = HashRing({f"r{i}": 1.0 for i in range(n)})
        keys = _keys(5000)
        before = {key: ring.route(key) for key in keys}
        grown = ring.with_region("newcomer")
        moved = sum(1 for key in keys if grown.route(key) != before[key])
        # The newcomer owns ~1/(n+1) of the circle; allow 2x slack for
        # vnode placement variance.  A naive modulo hash would move
        # ~n/(n+1) of all keys and fail this hard.
        assert moved <= 2 * len(keys) / (n + 1), (n, moved)
        # ...and every moved key moved *to* the newcomer, nowhere else.
        for key in keys:
            if grown.route(key) != before[key]:
                assert grown.route(key) == "newcomer"

    def test_leave_only_spreads_the_leavers_keys(self):
        ring = HashRing({name: 1.0 for name in ("east", "west", "south")})
        keys = _keys(4000)
        before = {key: ring.route(key) for key in keys}
        shrunk = ring.without_region("west")
        for key in keys:
            if before[key] != "west":
                assert shrunk.route(key) == before[key]

    def test_points_are_sha256_not_builtin_hash(self):
        # Pinned value: breaks if anyone swaps in the salted builtin.
        assert ring_point("east#0") == int.from_bytes(
            __import__("hashlib").sha256(b"east#0").digest()[:8], "big"
        )
        ring = HashRing({"east": 1.0, "west": 1.0})
        assert [ring.route(k) for k in _keys(32)] == [
            ring.route(k) for k in _keys(32)
        ]

    def test_weights_bias_routing(self):
        ring = HashRing({"big": 3.0, "small": 1.0}, replicas=128)
        keys = _keys(6000)
        big = sum(1 for key in keys if ring.route(key) == "big")
        assert big > len(keys) * 0.55

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one region"):
            HashRing({})
        with pytest.raises(ValueError, match="weight must be > 0"):
            HashRing({"east": 0.0})
        with pytest.raises(ValueError, match="identifier-like"):
            HashRing({"two words": 1.0})
        with pytest.raises(ValueError, match="already on the ring"):
            HashRing({"east": 1.0}).with_region("east")
        with pytest.raises(ValueError, match="last region"):
            HashRing({"east": 1.0}).without_region("east")


# ---------------------------------------------------------------------------
# Router: splitting a stream
# ---------------------------------------------------------------------------

class TestSessionRouter:
    def test_split_is_a_partition_preserving_order(self, catalog):
        stream = default_arrivals(
            [catalog["contra"]], rate_per_minute=30.0, seed=5, horizon=600.0
        )
        router = SessionRouter({"east": 1.0, "west": 1.0, "south": 1.0})
        slices = router.split(stream.requests)
        assert sorted(slices) == ["east", "south", "west"]
        rejoined = sorted(
            (r.request_id for name in slices for r in slices[name].requests)
        )
        assert rejoined == [r.request_id for r in stream.requests]
        for name in slices:
            ids = [r.request_id for r in slices[name].requests]
            assert ids == sorted(ids)  # source order preserved

    def test_same_player_always_same_region(self, catalog):
        stream = default_arrivals(
            [catalog["contra"], catalog["dota2"]],
            rate_per_minute=30.0, seed=5, horizon=600.0,
        )
        router = SessionRouter({"east": 1.0, "west": 1.0})
        seen = {}
        for request in stream.requests:
            region = router.region_of(request)
            pid = request.player.player_id
            assert seen.setdefault(pid, region) == region

    def test_routed_arrivals_due_window(self, catalog):
        stream = default_arrivals(
            [catalog["contra"]], rate_per_minute=30.0, seed=5, horizon=600.0
        )
        router = SessionRouter({"solo": 1.0})
        sliced = router.split(stream.requests)["solo"]
        assert [r.request_id for r in sliced.due(0.0, 300.0)] == [
            r.request_id for r in stream.due(0.0, 300.0)
        ]


# ---------------------------------------------------------------------------
# id_base namespacing (satellite: merged streams cannot collide)
# ---------------------------------------------------------------------------

class TestIdBase:
    def test_poisson_ids_offset(self, catalog):
        specs = [catalog["contra"]]
        a = PoissonArrivals(specs, seed=3, horizon=600.0)
        b = PoissonArrivals(specs, seed=3, horizon=600.0, id_base=1000)
        assert [r.request_id for r in b.requests] == [
            r.request_id + 1000 for r in a.requests
        ]

    def test_backlog_ids_offset(self, catalog):
        backlog = ContinuousBacklog([catalog["contra"]], id_base=500)
        assert backlog.pending(0.0)[0].request_id == 500

    def test_loadgen_ids_offset(self, catalog):
        specs = [catalog["contra"]]
        a = OpenLoopLoadGen(specs, rate_per_second=1.0, horizon=60.0)
        b = OpenLoopLoadGen(
            specs, rate_per_second=1.0, horizon=60.0, id_base=10
        )
        assert [r.request_id for r in b.requests] == [
            r.request_id + 10 for r in a.requests
        ]
        closed = ClosedLoopLoadGen(specs, id_base=77)
        assert closed.pending(0.0)[0].request_id == 77

    def test_negative_base_rejected(self, catalog):
        with pytest.raises(ValueError, match="id_base"):
            PoissonArrivals([catalog["contra"]], id_base=-1)

    def test_regional_streams_disjoint(self):
        fleet = FleetOfFleets(
            BASE,
            [RegionSpec("east"), RegionSpec("west")],
            arrival_mode="regional",
        )
        shards = fleet.build_shards()
        east = {r.request_id for r in shards["east"].arrivals.requests}
        west = {r.request_id for r in shards["west"].arrivals.requests}
        assert not east & west
        assert all(i < ID_STRIDE for i in east)
        assert all(ID_STRIDE <= i < 2 * ID_STRIDE for i in west)


# ---------------------------------------------------------------------------
# run_partitioned: the partitioned-stream seam
# ---------------------------------------------------------------------------

class TestRunPartitioned:
    def test_sorted_execution_order(self):
        order = []

        def thunk(name):
            return lambda: order.append(name) or name.upper()

        out = run_partitioned({"b": thunk("b"), "a": thunk("a")})
        assert order == ["a", "b"]
        assert out == {"a": "A", "b": "B"}

    def test_rejects_empty_and_colon_names(self):
        with pytest.raises(ValueError, match="at least one"):
            run_partitioned({})
        with pytest.raises(ValueError, match="':'-free"):
            run_partitioned({"east:0": lambda: None})


# ---------------------------------------------------------------------------
# RunConfig.region + region-aware cluster building
# ---------------------------------------------------------------------------

class TestRegionConfig:
    def test_round_trip_and_validation(self):
        config = RunConfig(games=("contra",), region="east")
        assert RunConfig.from_dict(config.to_dict()) == config
        assert "region" not in RunConfig(games=("contra",)).to_dict()
        with pytest.raises(ValueError, match="region"):
            RunConfig(games=("contra",), region="no/slash")

    def test_region_prefixes_nodes_and_shifts_seeds(self):
        plain = RunConfig(games=("contra",), nodes=2, seed=7, players=2,
                          sessions=2)
        east = RunConfig(games=("contra",), nodes=2, seed=7, players=2,
                         sessions=2, region="east")
        profiles = build_profiles(plain)
        cluster = build_cluster(east, profiles)
        assert [n.node_id for n in cluster.nodes] == [
            "east/node-0", "east/node-1"
        ]
        assert experiment_seed(east) == region_seed(7, "east")
        assert experiment_seed(east) != experiment_seed(plain)
        assert experiment_seed(plain) == 7

    def test_region_namespace_single_owner(self):
        # region_seed is the one minting site of the "region" namespace.
        assert region_seed(7, "east") == derive_seed(7, "region", "east")


# ---------------------------------------------------------------------------
# FleetOfFleets: reduction, determinism, isolation
# ---------------------------------------------------------------------------

def _regions(n):
    return [RegionSpec(f"r{i}") for i in range(n)]


class TestFleetOfFleets:
    def test_n1_reduces_to_single_fleet_digest(self, catalog):
        merged = FleetOfFleets(BASE, [RegionSpec("solo")]).run()
        profiles = build_profiles(BASE, catalog)
        baseline = FleetExperiment(
            build_cluster(BASE, profiles),
            [catalog[g] for g in BASE.games],
            horizon=BASE.horizon,
            rate_per_minute=BASE.rate_per_minute,
            seed=BASE.seed,
            detect_interval=BASE.detect_interval,
        ).run()
        assert merged.merged_digest == baseline.telemetry_digest

    def test_n4_double_run_byte_identical(self):
        a = FleetOfFleets(BASE, _regions(4)).run()
        b = FleetOfFleets(BASE, _regions(4)).run()
        assert a.merged_digest == b.merged_digest
        assert a.region_digests == b.region_digests
        assert a.requests_routed == b.requests_routed

    def test_merged_digest_covers_every_region(self, catalog):
        result = FleetOfFleets(BASE, _regions(2)).run()
        assert len(result.region_digests) == 2
        assert result.merged_digest not in result.region_digests.values()
        stream = default_arrivals(
            [catalog[g] for g in BASE.games],
            rate_per_minute=BASE.rate_per_minute,
            seed=BASE.seed,
            horizon=float(BASE.horizon),
        )
        assert sum(result.requests_routed.values()) == len(stream.requests)

    def test_region_fault_is_isolated(self):
        clean = FleetOfFleets(BASE, _regions(3)).run()
        plan = region_outage_plan("r1", BASE.nodes, 30.0, recover_after=60.0)
        specs = [
            RegionSpec("r0"),
            RegionSpec("r1", fault_plan=plan),
            RegionSpec("r2"),
        ]
        faulted = FleetOfFleets(BASE, specs).run()
        # The faulted region diverges; the others are byte-untouched.
        assert (
            faulted.region_digests["r1"] != clean.region_digests["r1"]
        )
        assert faulted.region_digests["r0"] == clean.region_digests["r0"]
        assert faulted.region_digests["r2"] == clean.region_digests["r2"]
        assert faulted.merged_digest != clean.merged_digest
        assert faulted.regions["r1"].result.fault_events

    def test_region_overrides_apply(self):
        specs = [RegionSpec("r0", nodes=1), RegionSpec("r1")]
        shards = FleetOfFleets(BASE, specs).build_shards()
        assert shards["r0"].config.nodes == 1
        assert shards["r1"].config.nodes == BASE.nodes
        assert shards["r0"].config.region == "r0"

    def test_obs_counters_region_labeled(self):
        from repro.obs import Observer

        obs = Observer()
        FleetOfFleets(BASE, _regions(2), obs=obs).run()
        text = obs.metrics_text()
        assert 'fleet_requests_routed_total{region="r0"}' in text
        assert 'fleet_sessions_completed_total{region="r1"}' in text

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one region"):
            FleetOfFleets(BASE, [])
        with pytest.raises(ValueError, match="duplicate region"):
            FleetOfFleets(BASE, [RegionSpec("a"), RegionSpec("a")])
        with pytest.raises(ValueError, match="must not be region-stamped"):
            FleetOfFleets(
                RunConfig(games=("contra",), region="east"),
                [RegionSpec("a")],
            )
        with pytest.raises(ValueError, match="arrival_mode"):
            FleetOfFleets(BASE, [RegionSpec("a")], arrival_mode="chaos")
        with pytest.raises(ValueError, match="weight"):
            RegionSpec("east", weight=0.0)

    def test_recorded_subtraces_replay(self, catalog):
        from repro.trace import replay_document

        result = FleetOfFleets(
            BASE, _regions(2), record=True, scenario="fleet-test"
        ).run()
        for name in sorted(result.regions):
            outcome = result.regions[name]
            document = outcome.recorder.document
            assert document.trailer.fleet_digest == outcome.digest
            report = replay_document(document)
            assert report.matched


# ---------------------------------------------------------------------------
# Region outage plans
# ---------------------------------------------------------------------------

class TestRegionOutagePlan:
    def test_plan_targets_every_prefixed_node(self):
        plan = region_outage_plan("east", 3, 120.0, recover_after=60.0)
        targets = sorted(spec.node for spec in plan.faults)
        assert targets == [region_node_id("east", i) for i in range(3)]
        assert all(spec.time == 120.0 for spec in plan.faults)

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            region_outage_plan("", 2, 0.0)
        with pytest.raises(ValueError, match="node_count"):
            region_outage_plan("east", 0, 0.0)


# ---------------------------------------------------------------------------
# Startup certification
# ---------------------------------------------------------------------------

class TestCertification:
    def test_packaged_certificate_matches_runtime(self):
        plan = certify_runtime()
        assert plan["counts"]["entry_points"] == len(runtime_entry_points())

    def test_stale_certificate_raises(self, tmp_path):
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps(
            {"schema": "cocg-shardplan/1", "entry_points": {}}
        ))
        with pytest.raises(ShardPlanError, match="not in the certificate"):
            certify_runtime(stale)

    def test_missing_certificate_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_certificate(tmp_path / "nope.json")

    def test_cli_exit_2_on_stale_certificate(self, tmp_path, capsys):
        from repro.cli import main

        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps(
            {"schema": "cocg-shardplan/1", "entry_points": {}}
        ))
        rc = main([
            "fleet", "contra", "--horizon", "60",
            "--shard-plan", str(stale),
        ])
        assert rc == 2
        assert "certification failed" in capsys.readouterr().err

    def test_cli_fleet_regions_smoke(self, capsys):
        from repro.cli import main

        rc = main([
            "fleet", "contra", "--horizon", "120", "--rate", "6",
            "--players", "2", "--sessions", "2", "--regions", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "merged digest:" in out
        assert "fleet-of-fleets: 2 regions" in out
