"""Tests for the baseline scheduling strategies."""

import numpy as np
import pytest

from repro.baselines import (
    CoCGStrategy,
    GAugurStrategy,
    MaxStaticStrategy,
    ReactiveStrategy,
    VBPStrategy,
)
from repro.games.session import GameSession
from repro.platform_.allocator import Allocator
from repro.platform_.resources import ResourceVector
from repro.platform_.server import GPUDevice, Server
from repro.sim.telemetry import TelemetryRecorder


def attach(strategy, profiles, cap=0.95):
    server = Server("s", gpus=[GPUDevice()])
    allocator = Allocator(server, utilization_cap=cap)
    strategy.attach(allocator, profiles)
    return allocator


class TestMaxStatic:
    def test_reserves_peak(self, toy_spec, toy_profile):
        strat = MaxStaticStrategy()
        attach(strat, {toy_spec.name: toy_profile})
        s = GameSession(toy_spec, "full", seed=0)
        assert strat.try_admit(s, time=0)
        alloc = strat.allocation_of(s.session_id)
        peak = toy_profile.library.max_peak()
        assert alloc.dominates(peak)

    def test_allocation_never_changes(self, toy_spec, toy_profile):
        strat = MaxStaticStrategy()
        attach(strat, {toy_spec.name: toy_profile})
        s = GameSession(toy_spec, "full", seed=0)
        strat.try_admit(s, time=0)
        before = strat.allocation_of(s.session_id)
        strat.control(5, TelemetryRecorder())
        assert strat.allocation_of(s.session_id) == before

    def test_rejects_when_peaks_do_not_fit(self, toy_spec, toy_profile):
        strat = MaxStaticStrategy()
        attach(strat, {toy_spec.name: toy_profile})
        admitted = sum(
            strat.try_admit(GameSession(toy_spec, "full", seed=i), time=0)
            for i in range(10)
        )
        assert 0 < admitted < 10
        assert strat.rejections > 0


class TestVBP:
    def test_reserves_90_percent_of_peak(self, toy_spec, toy_profile):
        strat = VBPStrategy()
        attach(strat, {toy_spec.name: toy_profile})
        s = GameSession(toy_spec, "full", seed=0)
        assert strat.try_admit(s, time=0)
        alloc = strat.allocation_of(s.session_id)
        from repro.core.allocation import AllocationPlanner

        peak = AllocationPlanner(toy_profile.library, accuracy=1.0).peak_plan()
        np.testing.assert_allclose(alloc.array, peak.array * 0.9, atol=1e-9)

    def test_admission_uses_full_peak(self, toy_spec, toy_profile):
        """VBP admits only when the FULL peak fits in what remains."""
        strat = VBPStrategy()
        allocator = attach(strat, {toy_spec.name: toy_profile})
        from repro.core.allocation import AllocationPlanner

        peak = AllocationPlanner(toy_profile.library, accuracy=1.0).peak_plan()
        # Occupy just enough GPU that the 0.9×peak reservation would fit
        # under the cap, but the full peak exceeds the remaining hardware:
        # rejection proves the admission test uses the full peak.
        filler_gpu = 100.0 - peak.gpu + 0.5
        assert filler_gpu + 0.9 * peak.gpu <= 95.0, "test premise"
        allocator.place("filler", ResourceVector(gpu=filler_gpu))
        s = GameSession(toy_spec, "full", seed=0)
        assert not strat.try_admit(s, time=0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            VBPStrategy(run_fraction=1.0)


class TestGAugur:
    def test_fixed_limit_between_mean_and_peak(self, toy_spec, toy_profile):
        strat = GAugurStrategy(alpha=0.5)
        limit = strat.fixed_limit(toy_profile)
        lib = toy_profile.library
        assert limit.fits_within(lib.max_peak())
        # gpu limit must exceed the frame-weighted mean
        means = [lib.stats(t).mean[1] for t in lib.execution_types]
        assert limit.gpu > min(means)

    def test_alpha_scales_limit(self, toy_profile):
        low = GAugurStrategy(alpha=0.2).fixed_limit(toy_profile)
        high = GAugurStrategy(alpha=0.8).fixed_limit(toy_profile)
        assert high.dominates(low)

    def test_limit_is_static_for_whole_run(self, toy_spec, toy_profile):
        strat = GAugurStrategy()
        attach(strat, {toy_spec.name: toy_profile})
        s = GameSession(toy_spec, "full", seed=0)
        strat.try_admit(s, time=0)
        before = strat.allocation_of(s.session_id)
        strat.control(5, TelemetryRecorder())
        assert strat.allocation_of(s.session_id) == before


class TestReactive:
    def test_follows_observed_usage(self, toy_spec, toy_profile):
        strat = ReactiveStrategy(margin=0.2)
        attach(strat, {toy_spec.name: toy_profile})
        s = GameSession(toy_spec, "full", seed=0)
        strat.try_admit(s, time=0)
        telemetry = TelemetryRecorder(noise_std=0.0)
        for t in range(5):
            telemetry.record(
                t, s.session_id,
                ResourceVector(cpu=30, gpu=40),
                ResourceVector.full(95.0),
            )
        strat.control(5, telemetry)
        alloc = strat.allocation_of(s.session_id)
        assert alloc.gpu == pytest.approx(48, abs=1)  # 40 × 1.2
        assert alloc.cpu == pytest.approx(36, abs=1)

    def test_floor_prevents_strangulation(self, toy_spec, toy_profile):
        strat = ReactiveStrategy(floor=8.0)
        attach(strat, {toy_spec.name: toy_profile})
        s = GameSession(toy_spec, "full", seed=0)
        strat.try_admit(s, time=0)
        telemetry = TelemetryRecorder(noise_std=0.0)
        for t in range(5):
            telemetry.record(
                t, s.session_id, ResourceVector.zeros(), ResourceVector.full(95.0)
            )
        strat.control(5, telemetry)
        assert strat.allocation_of(s.session_id).cpu >= 8.0

    def test_release_cleans_up(self, toy_spec, toy_profile):
        strat = ReactiveStrategy()
        attach(strat, {toy_spec.name: toy_profile})
        s = GameSession(toy_spec, "full", seed=0)
        strat.try_admit(s, time=0)
        strat.release(s.session_id, time=1)
        strat.control(5, TelemetryRecorder())  # must not crash


class TestCoCGStrategyAdapter:
    def test_adapts_scheduler(self, toy_spec, toy_profile):
        strat = CoCGStrategy()
        attach(strat, {toy_spec.name: toy_profile})
        s = GameSession(toy_spec, "full", seed=0)
        assert strat.try_admit(s, time=0)
        assert strat.admissions == 1
        assert strat.detect_interval == 5
        strat.release(s.session_id, time=1)

    def test_requires_attach(self, toy_spec):
        s = GameSession(toy_spec, "full", seed=0)
        with pytest.raises(RuntimeError):
            CoCGStrategy().try_admit(s, time=0)

    def test_unknown_game_profile(self, toy_spec, toy_profile, catalog):
        strat = CoCGStrategy()
        attach(strat, {toy_spec.name: toy_profile})
        alien = GameSession(catalog["contra"], "level-1", seed=0)
        with pytest.raises(KeyError):
            strat.try_admit(alien, time=0)


class TestRequestOrdering:
    def test_cocg_prefers_short_game_when_tight(self, toy_spec, toy_profile, catalog):
        """§IV-C2: with the server near its budget, the CoCG strategy
        moves a short game ahead of a long one in the admission order."""
        from types import SimpleNamespace

        strat = CoCGStrategy()
        allocator = attach(strat, {toy_spec.name: toy_profile})
        # Fill most of the budget so headroom is tight.
        allocator.place("filler", ResourceVector(cpu=70, gpu=70, gpu_mem=70, ram=70))
        long_req = SimpleNamespace(long_term=True)
        short_req = SimpleNamespace(long_term=False)
        ordered = strat.order_requests([long_req, short_req])
        assert ordered[0] is short_req

    def test_cocg_prefers_long_game_when_free(self, toy_spec, toy_profile):
        from types import SimpleNamespace

        strat = CoCGStrategy()
        attach(strat, {toy_spec.name: toy_profile})
        long_req = SimpleNamespace(long_term=True)
        short_req = SimpleNamespace(long_term=False)
        ordered = strat.order_requests([short_req, long_req])
        assert ordered[0] is long_req

    def test_default_strategies_keep_order(self, toy_spec, toy_profile):
        strat = VBPStrategy()
        attach(strat, {toy_spec.name: toy_profile})
        pending = ["a", "b", "c"]
        assert strat.order_requests(pending) == pending
