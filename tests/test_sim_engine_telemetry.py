"""Tests for the discrete-event engine and the telemetry recorder."""

import numpy as np
import pytest

from repro.platform_.resources import ResourceVector
from repro.sim.engine import SimulationEngine
from repro.sim.telemetry import TelemetryRecorder


def rv(cpu=0, gpu=0, gpu_mem=0, ram=0):
    return ResourceVector(cpu=cpu, gpu=gpu, gpu_mem=gpu_mem, ram=ram)


class TestEngine:
    def test_events_fire_in_time_order(self):
        eng = SimulationEngine()
        order = []
        eng.at(5, lambda e: order.append("b"))
        eng.at(2, lambda e: order.append("a"))
        eng.run()
        assert order == ["a", "b"]
        assert eng.now == 5

    def test_priority_breaks_ties(self):
        eng = SimulationEngine()
        order = []
        eng.at(1, lambda e: order.append("low"), priority=5)
        eng.at(1, lambda e: order.append("high"), priority=0)
        eng.run()
        assert order == ["high", "low"]

    def test_fifo_within_same_priority(self):
        eng = SimulationEngine()
        order = []
        eng.at(1, lambda e: order.append(1))
        eng.at(1, lambda e: order.append(2))
        eng.run()
        assert order == [1, 2]

    def test_after_is_relative(self):
        eng = SimulationEngine(start_time=10)
        seen = []
        eng.after(5, lambda e: seen.append(e.now))
        eng.run()
        assert seen == [15]

    def test_cancel(self):
        eng = SimulationEngine()
        hits = []
        ev = eng.at(1, lambda e: hits.append(1))
        ev.cancel()
        eng.run()
        assert hits == []
        assert eng.processed == 0

    def test_every_repeats_until_cancelled(self):
        eng = SimulationEngine()
        hits = []
        cancel = eng.every(2, lambda e: hits.append(e.now))
        eng.run_until(7)
        cancel()
        eng.run_until(20)
        assert hits == [2, 4, 6]

    def test_run_until_advances_clock(self):
        eng = SimulationEngine()
        eng.run_until(42)
        assert eng.now == 42

    def test_events_can_schedule_events(self):
        eng = SimulationEngine()
        seen = []

        def first(e):
            seen.append("first")
            e.after(1, lambda e2: seen.append("second"))

        eng.at(1, first)
        eng.run()
        assert seen == ["first", "second"]

    def test_cannot_schedule_in_past(self):
        eng = SimulationEngine(start_time=10)
        with pytest.raises(ValueError):
            eng.at(5, lambda e: None)

    def test_invalid_every_interval(self):
        with pytest.raises(ValueError):
            SimulationEngine().every(0, lambda e: None)

    def test_pending_counts_noncancelled(self):
        eng = SimulationEngine()
        ev = eng.at(1, lambda e: None)
        eng.at(2, lambda e: None)
        ev.cancel()
        assert eng.pending == 1


class TestTelemetry:
    def test_observed_is_clipped_at_allocation(self):
        rec = TelemetryRecorder(noise_std=0.0, seed=0)
        obs = rec.record(0, "s", rv(gpu=80), rv(gpu=50))
        assert obs.gpu == 50

    def test_noise_is_bounded_and_deterministic(self):
        a = TelemetryRecorder(noise_std=1.0, seed=3).record(0, "s", rv(gpu=50), rv(gpu=100))
        b = TelemetryRecorder(noise_std=1.0, seed=3).record(0, "s", rv(gpu=50), rv(gpu=100))
        assert a == b
        assert 0 <= a.gpu <= 100

    def test_observed_window_needs_full_window(self):
        rec = TelemetryRecorder(noise_std=0.0)
        for t in range(4):
            rec.record(t, "s", rv(gpu=10), rv(gpu=100))
        assert rec.observed_window("s", 5) is None
        rec.record(4, "s", rv(gpu=10), rv(gpu=100))
        win = rec.observed_window("s", 5)
        np.testing.assert_allclose(win, [0, 10, 0, 0])

    def test_series_roundtrip(self):
        rec = TelemetryRecorder(noise_std=0.0)
        rec.record(7, "s", rv(cpu=30), rv(cpu=20))
        demand = rec.true_demand_series("s")
        usage = rec.true_usage_series("s")
        alloc = rec.allocation_series("s")
        assert demand.column("cpu")[0] == 30
        assert usage.column("cpu")[0] == 20
        assert alloc.column("cpu")[0] == 20
        assert demand.start == 7.0

    def test_total_usage_matrix_sums_sessions(self):
        rec = TelemetryRecorder(noise_std=0.0)
        rec.record(0, "a", rv(gpu=30), rv(gpu=100))
        rec.record(0, "b", rv(gpu=40), rv(gpu=100))
        total = rec.total_usage_matrix(2)
        assert total[0, 1] == 70
        assert total[1, 1] == 0

    def test_peak_total(self):
        rec = TelemetryRecorder(noise_std=0.0)
        rec.record(0, "a", rv(gpu=30), rv(gpu=100))
        rec.record(1, "a", rv(gpu=90), rv(gpu=100))
        assert rec.peak_total_usage(2)[1] == 90

    def test_missing_session(self):
        with pytest.raises(KeyError):
            TelemetryRecorder().observed_series("ghost")
