"""Shared fixtures.

Building a :class:`~repro.core.pipeline.GameProfile` costs seconds (it
generates a trace corpus, clusters it, and trains three model backends),
so profiles are session-scoped and the games used in tests are the two
cheapest catalog entries plus a purpose-built toy game.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import GameProfile
from repro.games.catalog import build_catalog
from repro.games.category import GameCategory
from repro.games.spec import ClusterSpec, GameSpec, ScriptSpec, StageKind, StageSpec
from repro.platform_.resources import ResourceVector


@pytest.fixture(scope="session")
def catalog():
    return build_catalog()


def _toy_spec() -> GameSpec:
    """A minimal 3-cluster game: loading, quiet play, heavy play.

    Cheap to simulate (≈ 2 minutes per run) and fully deterministic in
    structure, so scheduler tests can assert exact stage behaviour.
    """
    clusters = {
        "load": ClusterSpec(
            "load",
            ResourceVector(cpu=50, gpu=4, gpu_mem=10, ram=10),
            ResourceVector(cpu=1.5, gpu=0.8, gpu_mem=0.5, ram=0.5),
            nominal_fps=60,
        ),
        "quiet": ClusterSpec(
            "quiet",
            ResourceVector(cpu=20, gpu=20, gpu_mem=15, ram=12),
            ResourceVector(cpu=1.2, gpu=1.2, gpu_mem=0.5, ram=0.5),
            nominal_fps=100,
        ),
        "heavy": ClusterSpec(
            "heavy",
            ResourceVector(cpu=40, gpu=55, gpu_mem=25, ram=15),
            ResourceVector(cpu=1.5, gpu=1.5, gpu_mem=0.5, ram=0.5),
            nominal_fps=80,
        ),
    }
    stages = {
        "boot": StageSpec("boot", StageKind.LOADING, ("load",), 8.0),
        "quiet": StageSpec("quiet", StageKind.EXECUTION, ("quiet",), 60.0, duration_scale=0.3),
        "mid": StageSpec("mid", StageKind.LOADING, ("load",), 7.0),
        "heavy": StageSpec("heavy", StageKind.EXECUTION, ("heavy",), 50.0, duration_scale=0.3),
        "exit": StageSpec("exit", StageKind.LOADING, ("load",), 6.0),
    }
    scripts = (
        ScriptSpec("full", "quiet then heavy", ("boot", "quiet", "mid", "heavy", "exit")),
    )
    return GameSpec(
        name="toygame",
        category=GameCategory.WEB,
        clusters=clusters,
        stages=stages,
        scripts=scripts,
        frame_lock=None,
        long_term=False,
    )


@pytest.fixture(scope="session")
def toy_spec():
    return _toy_spec()


@pytest.fixture(scope="session")
def toy_profile(toy_spec):
    return GameProfile.build(
        toy_spec, n_players=3, sessions_per_player=3, seed=5, backends=("dtc",)
    )


@pytest.fixture(scope="session")
def contra_profile(catalog):
    return GameProfile.build(
        catalog["contra"], n_players=3, sessions_per_player=3, seed=5, backends=("dtc",)
    )


@pytest.fixture(scope="session")
def genshin_profile(catalog):
    return GameProfile.build(
        catalog["genshin"], n_players=4, sessions_per_player=3, seed=5,
        backends=("dtc", "gbdt"),
    )


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
