"""Tests for game specifications and the five-game catalog."""

import numpy as np
import pytest

from repro.games.catalog import build_catalog
from repro.games.category import GameCategory
from repro.games.spec import ClusterSpec, GameSpec, ScriptSpec, StageKind, StageSpec
from repro.platform_.resources import ResourceVector


def rv(cpu=0, gpu=0, gpu_mem=0, ram=0):
    return ResourceVector(cpu=cpu, gpu=gpu, gpu_mem=gpu_mem, ram=ram)


def tiny_cluster(name, gpu=10.0):
    return ClusterSpec(name, rv(cpu=10, gpu=gpu), rv(cpu=1, gpu=1), nominal_fps=60)


class TestSpecValidation:
    def test_loading_stage_single_cluster(self):
        with pytest.raises(ValueError):
            StageSpec("l", StageKind.LOADING, ("a", "b"), 5.0)

    def test_stage_needs_clusters(self):
        with pytest.raises(ValueError):
            StageSpec("s", StageKind.EXECUTION, (), 5.0)

    def test_script_group_too_small(self):
        with pytest.raises(ValueError):
            ScriptSpec("s", "d", ("a", "b"), permutable_groups=((0,),))

    def test_script_group_out_of_range(self):
        with pytest.raises(ValueError):
            ScriptSpec("s", "d", ("a",), permutable_groups=((0, 5),))

    def test_game_requires_loading_stage(self):
        clusters = {"c": tiny_cluster("c")}
        stages = {"e": StageSpec("e", StageKind.EXECUTION, ("c",), 10.0)}
        with pytest.raises(ValueError, match="loading"):
            GameSpec(
                name="g", category=GameCategory.WEB, clusters=clusters,
                stages=stages, scripts=(ScriptSpec("s", "d", ("e",)),),
            )

    def test_game_rejects_unknown_cluster_reference(self):
        clusters = {"c": tiny_cluster("c")}
        stages = {
            "l": StageSpec("l", StageKind.LOADING, ("nope",), 5.0),
        }
        with pytest.raises(ValueError, match="unknown cluster"):
            GameSpec(
                name="g", category=GameCategory.WEB, clusters=clusters,
                stages=stages, scripts=(ScriptSpec("s", "d", ("l",)),),
            )

    def test_script_rejects_unknown_stage(self):
        clusters = {"c": tiny_cluster("c")}
        stages = {"l": StageSpec("l", StageKind.LOADING, ("c",), 5.0)}
        with pytest.raises(ValueError, match="unknown stage"):
            GameSpec(
                name="g", category=GameCategory.WEB, clusters=clusters,
                stages=stages, scripts=(ScriptSpec("s", "d", ("ghost",)),),
            )

    def test_permutable_slot_must_be_execution(self, catalog):
        spec = catalog["genshin"]
        with pytest.raises(ValueError, match="not an execution stage"):
            GameSpec(
                name="bad", category=spec.category, clusters=spec.clusters,
                stages=spec.stages,
                scripts=(ScriptSpec(
                    "s", "d", ("boot", "menu"), permutable_groups=((0, 1),)
                ),),
            )

    def test_cluster_mean_must_fit_100(self):
        with pytest.raises(ValueError):
            ClusterSpec("c", rv(cpu=101), rv(), nominal_fps=60)


class TestCatalogStructure:
    EXPECTED_K = {
        "contra": 2, "csgo": 4, "genshin": 4, "dota2": 5, "devil_may_cry": 6
    }
    # Table I: stage types per script.
    EXPECTED_TYPES = {
        ("dota2", "match-9-bots"): 3,
        ("dota2", "arcade-tower-defense"): 3,
        ("csgo", "match-9-bots"): 4,
        ("csgo", "training-map"): 3,
        ("devil_may_cry", "level-1"): 2,
        ("devil_may_cry", "level-2"): 4,
        ("devil_may_cry", "level-3"): 6,
        ("genshin", "run-battle-fly"): 5,
        ("genshin", "fly-battle-run"): 5,
        ("genshin", "battle-run-fly"): 5,
        ("contra", "level-1"): 2,
        ("contra", "levels-1-2"): 2,
        ("contra", "levels-1-3"): 2,
    }

    def test_five_games(self, catalog):
        assert set(catalog) == {
            "dota2", "csgo", "genshin", "devil_may_cry", "contra"
        }

    def test_cluster_counts_match_fig14(self, catalog):
        for name, k in self.EXPECTED_K.items():
            assert len(catalog[name].clusters) == k, name

    def test_stage_type_counts_match_table1(self, catalog):
        for (game, script), n in self.EXPECTED_TYPES.items():
            assert catalog[game].stage_type_count(script) == n, (game, script)

    def test_categories_match_paper(self, catalog):
        assert catalog["dota2"].category is GameCategory.MMO
        assert catalog["csgo"].category is GameCategory.MMO
        assert catalog["genshin"].category is GameCategory.MOBILE
        assert catalog["devil_may_cry"].category is GameCategory.CONSOLE
        assert catalog["contra"].category is GameCategory.WEB

    def test_frame_locks(self, catalog):
        assert catalog["genshin"].frame_lock == 60
        assert catalog["devil_may_cry"].frame_lock == 60
        assert catalog["dota2"].frame_lock is None
        assert catalog["csgo"].frame_lock is None

    def test_length_classes(self, catalog):
        assert catalog["dota2"].long_term and catalog["csgo"].long_term
        assert not catalog["genshin"].long_term and not catalog["contra"].long_term

    def test_loading_clusters_are_cpu_heavy_gpu_light(self, catalog):
        for spec in catalog.values():
            for cname in spec.loading_cluster_names():
                c = spec.clusters[cname]
                assert c.mean.gpu < 0.3 * c.mean.cpu, (spec.name, cname)

    def test_fig11_regimes(self, catalog):
        """The co-location regimes of Fig 11 hold at the peak level."""
        peak = {n: s.peak_demand().gpu for n, s in catalog.items()}
        cap = 95.0
        # DOTA2 + Devil May Cry: static peak reservation cannot fit.
        assert peak["dota2"] + peak["devil_may_cry"] > cap
        # CSGO + Genshin: same.
        assert peak["csgo"] + peak["genshin"] > cap
        # Genshin + Contra: fits comfortably.
        assert peak["genshin"] + peak["contra"] < cap

    def test_loading_durations_within_paper_range(self, catalog):
        """Loading work is within the paper's 5–30 s window (exit screens
        may be slightly shorter)."""
        for spec in catalog.values():
            for stage in spec.stages.values():
                if stage.kind is StageKind.LOADING:
                    assert 3 <= stage.base_duration <= 30

    def test_expected_duration_positive(self, catalog):
        for spec in catalog.values():
            assert spec.expected_duration() > 30

    def test_script_lookup(self, catalog):
        with pytest.raises(KeyError):
            catalog["contra"].script("ghost")

    def test_stage_peak_monotone_in_sigmas(self, catalog):
        spec = catalog["genshin"]
        lo = spec.stage_peak_demand("battle", sigmas=1.0)
        hi = spec.stage_peak_demand("battle", sigmas=3.0)
        assert hi.dominates(lo)
