"""Tests for the player model and the runtime game session."""

import numpy as np
import pytest

from repro.games.category import GameCategory
from repro.games.player import PlayerModel
from repro.games.session import GameSession
from repro.games.spec import StageKind
from repro.platform_.resources import ResourceVector


FULL = ResourceVector.full(100.0)


class TestPlayerModel:
    def test_preferred_order_is_stable(self):
        p = PlayerModel("alice", GameCategory.MOBILE)
        assert p.preferred_order((3, 5, 7)) == p.preferred_order((3, 5, 7))

    def test_preferred_order_is_permutation(self):
        p = PlayerModel("bob", GameCategory.MOBILE)
        assert sorted(p.preferred_order((3, 5, 7))) == [3, 5, 7]

    def test_different_players_have_different_preferences(self):
        orders = {
            PlayerModel(f"p{i}", GameCategory.MOBILE).preferred_order((0, 1, 2))
            for i in range(12)
        }
        assert len(orders) > 1

    def test_realized_order_mostly_preferred_for_console(self, rng):
        p = PlayerModel("carol", GameCategory.CONSOLE)
        pref = p.preferred_order((0, 1))
        same = sum(p.realized_order((0, 1), rng) == pref for _ in range(200))
        assert same > 150

    def test_web_durations_are_tight(self, rng):
        p = PlayerModel("dave", GameCategory.WEB)
        mults = [p.duration_multiplier(1.0, rng) for _ in range(200)]
        assert np.std(mults) < 0.1

    def test_mobile_durations_vary_more_than_web(self, rng):
        web = PlayerModel("w", GameCategory.WEB)
        mob = PlayerModel("m", GameCategory.MOBILE)
        sw = np.std([web.duration_multiplier(1.0, rng) for _ in range(300)])
        sm = np.std([mob.duration_multiplier(1.0, rng) for _ in range(300)])
        assert sm > sw

    def test_zero_duration_scale_pins(self, rng):
        p = PlayerModel("e", GameCategory.MMO)
        assert p.duration_multiplier(0.0, rng) == 1.0

    def test_bursts_eventually_happen(self, rng):
        p = PlayerModel("f", GameCategory.MMO)
        bursts = [b for _ in range(5000) if (b := p.maybe_burst(rng))]
        assert bursts
        for b in bursts:
            assert b.extra.is_nonnegative()
            assert b.remaining >= 1

    def test_burst_tick_expires(self):
        from repro.games.player import BurstEvent

        b = BurstEvent(ResourceVector(gpu=5), 2)
        assert b.active
        b = b.tick().tick()
        assert not b.active


class TestGameSession:
    def test_runs_to_completion(self, toy_spec):
        s = GameSession(toy_spec, "full", seed=0)
        ticks = 0
        while not s.finished:
            s.advance(FULL)
            ticks += 1
            assert ticks < 10_000
        assert s.finished
        # history covers the full timeline contiguously
        assert s.history[0][1] == 0
        assert s.history[-1][2] == s.elapsed

    def test_stage_order_matches_script_without_permutation(self, toy_spec):
        s = GameSession(toy_spec, "full", seed=1)
        assert s.resolved_stage_names == ("boot", "quiet", "mid", "heavy", "exit")

    def test_starts_in_loading(self, toy_spec):
        s = GameSession(toy_spec, "full", seed=0)
        assert s.is_loading
        assert s.current_stage.name == "boot"

    def test_demand_stays_in_bounds(self, toy_spec):
        s = GameSession(toy_spec, "full", seed=2)
        while not s.finished:
            tick = s.advance(FULL)
            assert tick.demand.is_nonnegative()
            assert tick.demand.fits_within(FULL)

    def test_loading_stretches_under_starvation(self, toy_spec):
        fast = GameSession(toy_spec, "full", seed=3)
        slow = GameSession(toy_spec, "full", seed=3)
        starved = ResourceVector(cpu=10, gpu=100, gpu_mem=100, ram=100)

        def boot_seconds(session, alloc):
            n = 0
            while not session.finished and session.current_stage.name == "boot":
                session.advance(alloc)
                n += 1
            return n

        assert boot_seconds(slow, starved) > boot_seconds(fast, FULL) * 2

    def test_execution_progresses_regardless_of_supply(self, toy_spec):
        s = GameSession(toy_spec, "full", seed=4)
        while s.is_loading:
            s.advance(FULL)
        start = s.elapsed
        zero = ResourceVector.zeros()
        # Starved play still advances wall time and eventually ends.
        while not s.finished and s.current_stage.name == "quiet":
            s.advance(zero)
            assert s.elapsed - start < 500
        assert True

    def test_advance_after_finish_raises(self, toy_spec):
        s = GameSession(toy_spec, "full", seed=5)
        while not s.finished:
            s.advance(FULL)
        with pytest.raises(RuntimeError):
            s.advance(FULL)

    def test_usage_is_demand_clipped(self, toy_spec):
        s = GameSession(toy_spec, "full", seed=6)
        tick = s.advance(ResourceVector(cpu=5, gpu=5, gpu_mem=5, ram=5))
        usage = tick.usage(ResourceVector(cpu=5, gpu=5, gpu_mem=5, ram=5))
        assert usage.fits_within(ResourceVector.full(5.0))

    def test_reproducible_under_seed(self, toy_spec):
        a = GameSession(toy_spec, "full", seed=9)
        b = GameSession(toy_spec, "full", seed=9)
        for _ in range(30):
            ta, tb = a.advance(FULL), b.advance(FULL)
            assert ta.demand == tb.demand
            assert ta.stage_name == tb.stage_name

    def test_random_script_selection_is_seeded(self, catalog):
        a = GameSession(catalog["contra"], None, seed=11)
        b = GameSession(catalog["contra"], None, seed=11)
        assert a.script.name == b.script.name

    def test_genshin_permutation_respects_player(self, catalog):
        spec = catalog["genshin"]
        player = PlayerModel("perma", GameCategory.MOBILE)
        orders = set()
        for seed in range(6):
            s = GameSession(spec, "run-battle-fly", player=player, seed=seed)
            orders.add(s.resolved_stage_names)
        # Mostly the player's preferred order → few distinct realizations.
        assert len(orders) <= 3

    def test_nominal_duration_close_to_spec(self, toy_spec):
        s = GameSession(toy_spec, "full", seed=12)
        expected = toy_spec.expected_script_duration("full")
        assert s.nominal_duration() == pytest.approx(expected, rel=0.35)

    def test_frame_lock_propagates(self, catalog):
        s = GameSession(catalog["genshin"], "run-battle-fly", seed=0)
        tick = s.advance(FULL)
        assert tick.frame_lock == 60
