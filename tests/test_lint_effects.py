"""Tests for the effect system: signature inference, the ``@effects``
decorator, CG015–CG018, the ``effects.json`` artifact, precise
``self.method`` call resolution, and the ``--explain``/``--effects-out``
CLI flags."""

import ast
import json
import textwrap

import pytest

from repro.lint import (
    EFFECT_NAMES,
    EffectInference,
    ProjectContext,
    build_call_graph,
    explain_rule,
    infer_effects,
    lint_paths,
    render_effects,
    rule_class,
    summarize_module,
)
from repro.lint.__main__ import main as lint_main
from repro.lint.pragmas import parse_suppressions
from repro.lint.registry import UnknownRuleError
from repro.util.effects import (
    EFFECTS,
    EffectError,
    declared_effects,
    effects,
    is_hot_path,
)


def write_tree(tmp_path, files):
    """Materialise ``{relpath: source}`` under ``tmp_path``."""
    for rel, source in files.items():
        file = tmp_path / rel
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_text(textwrap.dedent(source))
    return tmp_path


def build_project(files):
    """A ProjectContext straight from ``{relpath: source}`` (no disk)."""
    mods = {}
    for rel, source in files.items():
        source = textwrap.dedent(source)
        summary = summarize_module(
            ast.parse(source),
            path=rel,
            rel_parts=tuple(rel.split("/")),
            suppressions=parse_suppressions(source),
        )
        mods[summary.module] = summary
    return ProjectContext(mods)


def rule_ids(result):
    return [f.rule_id for f in result.findings]


# ----------------------------------------------------------------------
# The @effects decorator (runtime half)
# ----------------------------------------------------------------------

class TestEffectsDecorator:
    def test_zero_cost_returns_function_unchanged(self):
        def fn(x):
            return x

        decorated = effects("rng")(fn)
        assert decorated is fn
        assert declared_effects(fn) == frozenset({"rng"})
        assert not is_hot_path(fn)

    def test_hot_path_flag(self):
        @effects(hot_path=True)
        def fn():
            return 0

        assert declared_effects(fn) == frozenset()
        assert is_hot_path(fn)

    def test_unknown_effect_fails_at_import_time(self):
        with pytest.raises(EffectError, match="unknown effect"):
            effects("rngg")

    def test_undecorated_function_is_undeclared(self):
        def fn():
            return 0

        assert declared_effects(fn) is None
        assert not is_hot_path(fn)

    def test_alphabet_matches_analyzer(self):
        # The analyzer mirrors the tuple instead of importing it; pin
        # the two together so they cannot drift.
        assert EFFECTS == EFFECT_NAMES


# ----------------------------------------------------------------------
# Effect-signature inference
# ----------------------------------------------------------------------

class TestEffectInference:
    def test_seeds_and_propagation(self):
        project = build_project({
            "serve/loop.py": """\
                import time
                from util.helpers import sample

                def outer(engine, rng):
                    return inner(engine, rng)

                def inner(engine, rng):
                    engine.after(5.0, outer)
                    return sample(rng) + time.time()
                """,
            "util/helpers.py": """\
                def sample(rng):
                    return rng.normal()
                """,
        })
        inf = EffectInference(project)
        assert inf.effects_of("util.helpers::sample") == {"rng"}
        assert inf.effects_of("serve.loop::inner") == \
            {"rng", "clock", "engine_emit"}
        # Callee effects propagate to the caller.
        assert inf.effects_of("serve.loop::outer") == \
            {"rng", "clock", "engine_emit"}

    def test_global_write_and_io_and_digest_seeds(self):
        project = build_project({
            "util/state.py": """\
                TOTALS = {}

                def bump():
                    TOTALS["n"] = 1

                def mutate():
                    TOTALS.update(n=2)

                def rebind():
                    global TOTALS
                    TOTALS = {}

                def dump(telemetry):
                    telemetry.record(1.0, {})
                    print("done")

                def local_only():
                    totals = {}
                    totals["n"] = 1
                    return totals
                """,
        })
        inf = EffectInference(project)
        assert inf.effects_of("util.state::bump") == {"global_write"}
        assert inf.effects_of("util.state::mutate") == {"global_write"}
        assert inf.effects_of("util.state::rebind") == {"global_write"}
        assert inf.effects_of("util.state::dump") == {"digest_write", "io"}
        assert inf.effects_of("util.state::local_only") == set()

    def test_instance_state_is_not_global_write(self):
        project = build_project({
            "core/ctl.py": """\
                class Ctl:
                    def tick(self):
                        self.count = 1
                        self.log.append("t")
                """,
        })
        inf = EffectInference(project)
        assert inf.effects_of("core.ctl::Ctl.tick") == set()

    def test_class_level_store_is_global_write(self):
        project = build_project({
            "core/cfg.py": """\
                class Config:
                    limit = 5

                def tune():
                    Config.limit = 9
                """,
        })
        inf = EffectInference(project)
        assert inf.effects_of("core.cfg::tune") == {"global_write"}

    def test_witness_chain_names_the_path(self):
        project = build_project({
            "serve/a.py": """\
                from util.b import middle

                def top():
                    return middle()
                """,
            "util/b.py": """\
                def middle():
                    return leaf()

                def leaf():
                    return open("x").read()
                """,
        })
        inf = EffectInference(project)
        chain = inf.chain("serve.a::top", "io")
        assert chain == ["serve.a::top", "util.b::middle", "util.b::leaf"]
        assert "open()" in inf.witness("serve.a::top", "io").target

    def test_memoised_per_project(self):
        project = build_project({"util/x.py": "def f():\n    return 1\n"})
        assert infer_effects(project) is infer_effects(project)


# ----------------------------------------------------------------------
# Precise self.method call resolution (dataflow satellite)
# ----------------------------------------------------------------------

class TestSelfCallResolution:
    def test_self_call_resolves_to_own_class_only(self):
        project = build_project({
            "core/a.py": """\
                class Walker:
                    def entry(self):
                        return self.helper()

                    def helper(self):
                        return 1
                """,
            "util/b.py": """\
                import random

                def helper():
                    return random.random()
                """,
        })
        graph = build_call_graph(project)
        assert graph.callees("core.a::Walker.entry") == {"core.a::Walker.helper"}
        # ...so the foreign helper's RNG draw does not leak into entry.
        inf = EffectInference(project, graph)
        assert inf.effects_of("core.a::Walker.entry") == set()

    def test_unknown_self_method_keeps_conservative_fanout(self):
        project = build_project({
            "core/a.py": """\
                class Walker:
                    def entry(self):
                        return self.inherited()
                """,
            "util/b.py": """\
                def inherited():
                    return open("x")
                """,
        })
        graph = build_call_graph(project)
        assert graph.callees("core.a::Walker.entry") == {"util.b::inherited"}


# ----------------------------------------------------------------------
# CG015 — shard safety
# ----------------------------------------------------------------------

class TestCG015:
    def test_module_write_reachable_from_fleet_run(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "cluster/fleet.py": """\
                COUNTS = {}

                class FleetExperiment:
                    def run(self):
                        return self.step()

                    def step(self):
                        COUNTS["runs"] = 1
                        return COUNTS
                """,
        })], select=["CG015"])
        assert rule_ids(result) == ["CG015"]
        message = result.findings[0].message
        assert "COUNTS" in message
        assert "FleetExperiment.run" in message  # the entry point
        assert "FleetExperiment.step" in message  # the chain

    def test_write_behind_gateway_pump_in_other_module(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "serve/gateway.py": """\
                from util.stats import bump

                def pump(q):
                    bump()
                """,
            "util/stats.py": """\
                TOTALS = {}

                def bump():
                    TOTALS.update(n=1)
                """,
        })], select=["CG015"])
        assert rule_ids(result) == ["CG015"]
        assert result.findings[0].path.endswith("stats.py")

    def test_metrics_registry_writes_are_exempt(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "serve/gateway.py": """\
                from obs.metrics import bump

                def pump(q):
                    bump()
                """,
            "obs/metrics.py": """\
                TOTALS = {}

                def bump():
                    TOTALS["n"] = 1
                """,
        })], select=["CG015"])
        assert result.ok

    def test_instance_state_is_clean(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "cluster/fleet.py": """\
                class FleetExperiment:
                    def run(self):
                        self.counts = {}
                        self.counts["runs"] = 1
                """,
        })], select=["CG015"])
        assert result.ok

    def test_unreachable_write_is_clean(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "analysis/tables.py": """\
                CACHE = {}

                def fill():
                    CACHE["t"] = 1
                """,
        })], select=["CG015"])
        assert result.ok

    def test_pragma_suppresses(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "cluster/fleet.py": """\
                COUNTS = {}

                class FleetExperiment:
                    def run(self):
                        COUNTS["runs"] = 1  # lint: disable=CG015 -- single-shard tool
                """,
        })], select=["CG015"])
        assert result.ok


# ----------------------------------------------------------------------
# CG016 — declared vs inferred drift
# ----------------------------------------------------------------------

class TestCG016:
    def test_undeclared_effect_errors_with_witness(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "util/tools.py": """\
                from repro.util.effects import effects

                @effects()
                def emit():
                    print("x")
                """,
        })], select=["CG016"])
        assert rule_ids(result) == ["CG016"]
        message = result.findings[0].message
        assert "undeclared 'io'" in message
        assert "print()" in message

    def test_stale_declaration_errors(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "util/tools.py": """\
                from repro.util.effects import effects

                @effects("clock")
                def calc(x):
                    return x + 1
                """,
        })], select=["CG016"])
        assert rule_ids(result) == ["CG016"]
        assert "stale" in result.findings[0].message

    def test_matching_declaration_is_clean(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "util/tools.py": """\
                from repro.util.effects import effects

                @effects("rng")
                def draw(rng):
                    return rng.normal()
                """,
        })], select=["CG016"])
        assert result.ok

    def test_transitive_effect_counts_against_declaration(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "util/tools.py": """\
                import time
                from repro.util.effects import effects

                @effects()
                def outer():
                    return helper()

                def helper():
                    return time.time()
                """,
        })], select=["CG016"])
        assert rule_ids(result) == ["CG016"]
        assert "undeclared 'clock'" in result.findings[0].message
        assert "helper" in result.findings[0].message

    def test_undecorated_functions_are_not_checked(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "util/tools.py": """\
                def emit():
                    print("x")
                """,
        })], select=["CG016"])
        assert result.ok


# ----------------------------------------------------------------------
# CG017 — architecture layering
# ----------------------------------------------------------------------

class TestCG017:
    def test_sim_importing_serve_is_a_back_edge(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "sim/engine.py": """\
                from repro.serve.gateway import Gateway

                def boot():
                    return Gateway
                """,
        })], select=["CG017"])
        assert rule_ids(result) == ["CG017"]
        finding = result.findings[0]
        assert finding.line == 1  # reported at the import statement
        assert "serve" in finding.message

    def test_downward_and_same_layer_imports_are_clean(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "cluster/exp.py": """\
                from repro.core.scheduler import CoCGScheduler
                from repro.faults.plan import FaultPlan
                from repro.util.rng import as_rng
                """,
        })], select=["CG017"])
        assert result.ok

    def test_type_checking_guard_is_exempt(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "sim/types.py": """\
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from repro.serve.gateway import Gateway

                def use(g: "Gateway") -> None:
                    return None
                """,
        })], select=["CG017"])
        assert result.ok

    def test_root_modules_are_the_composition_root(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "cli.py": """\
                from repro.serve.gateway import Gateway
                from repro.sim.engine import SimulationEngine
                """,
        })], select=["CG017"])
        assert result.ok

    def test_shipped_tree_has_no_back_edges(self):
        # The real package must satisfy its own DAG.
        result = lint_paths(["src"], select=["CG017"])
        assert result.ok, [f.format() for f in result.findings]


# ----------------------------------------------------------------------
# CG018 — hot-path purity
# ----------------------------------------------------------------------

class TestCG018:
    def test_clock_on_hot_path_errors(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "core/kernel.py": """\
                import time
                from repro.util.effects import effects

                @effects(hot_path=True)
                def step(x):
                    return time.time() + x
                """,
        })], select=["CG018"])
        assert rule_ids(result) == ["CG018"]
        assert "'clock'" in result.findings[0].message

    def test_undeclared_rng_suggests_declaring_it(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "core/kernel.py": """\
                from repro.util.effects import effects

                @effects(hot_path=True)
                def draw(rng):
                    return rng.normal()
                """,
        })], select=["CG018"])
        assert rule_ids(result) == ["CG018"]
        assert "@effects('rng', hot_path=True)" in result.findings[0].message

    def test_declared_rng_is_the_allowed_exception(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "core/kernel.py": """\
                from repro.util.effects import effects

                @effects("rng", hot_path=True)
                def draw(rng):
                    return rng.normal()
                """,
        })], select=["CG016", "CG018"])
        assert result.ok

    def test_hot_path_may_declare_at_most_rng(self, tmp_path):
        result = lint_paths([write_tree(tmp_path, {
            "core/kernel.py": """\
                from repro.util.effects import effects

                @effects("io", hot_path=True)
                def dump(x):
                    print(x)
                """,
        })], select=["CG018"])
        assert rule_ids(result) == ["CG018"]
        assert "at most 'rng'" in result.findings[0].message

    def test_shipped_hot_path_is_pure(self):
        # The annotated Algorithm-1/rollout path must hold under its own
        # analyzer: no CG016 drift, no CG018 impurity.
        result = lint_paths(["src"], select=["CG016", "CG018"])
        assert result.ok, [f.format() for f in result.findings]


# ----------------------------------------------------------------------
# effects.json artifact
# ----------------------------------------------------------------------

class TestEffectsArtifact:
    FILES = {
        "serve/loop.py": """\
            import time
            from repro.util.effects import effects

            @effects("clock")
            def tick():
                return time.time()

            def pure(x):
                return x + 1
            """,
    }

    def test_double_run_is_byte_identical(self, tmp_path):
        tree = write_tree(tmp_path, self.FILES)
        first = lint_paths([tree], effects=True).effects
        second = lint_paths([tree], effects=True).effects
        assert first is not None and first == second

    def test_artifact_shape(self, tmp_path):
        tree = write_tree(tmp_path, self.FILES)
        payload = json.loads(lint_paths([tree], effects=True).effects)
        assert payload["schema"] == "cocg-effects/1"
        assert payload["effect_alphabet"] == list(EFFECT_NAMES)
        fn = payload["functions"]["serve.loop::tick"]
        assert fn["effects"] == ["clock"]
        assert fn["declared"] == ["clock"]
        assert "time.time()" in fn["own"]["clock"]
        # Pure, undeclared functions are omitted.
        assert "serve.loop::pure" not in payload["functions"]

    def test_no_absolute_paths_in_artifact(self, tmp_path):
        tree = write_tree(tmp_path, self.FILES)
        text = lint_paths([tree], effects=True).effects
        assert str(tmp_path) not in text

    def test_render_effects_direct(self):
        project = build_project(self.FILES)
        assert render_effects(project) == render_effects(project)

    def test_cli_effects_out_writes_artifact(self, tmp_path, capsys):
        tree = write_tree(tmp_path, {
            "util/tools.py": """\
                from repro.util.effects import effects

                __all__ = ["draw"]

                @effects("rng")
                def draw(rng):
                    return rng.normal()
                """,
        })
        out = tmp_path / "effects.json"
        code = lint_main([str(tree), "--no-cache",
                          "--effects-out", str(out)])
        capsys.readouterr()
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "cocg-effects/1"
        assert payload["functions"]["util.tools::draw"]["effects"] == ["rng"]


# ----------------------------------------------------------------------
# --explain
# ----------------------------------------------------------------------

class TestExplain:
    @pytest.mark.parametrize("rule_id", [
        "CG000", "CG001", "CG010", "CG015", "CG016", "CG017", "CG018",
    ])
    def test_every_rule_explains_with_a_fix_recipe(self, rule_id):
        text = explain_rule(rule_id)
        assert text.startswith(rule_id)
        assert "Fix:" in text

    def test_unknown_rule_raises(self):
        with pytest.raises(UnknownRuleError):
            explain_rule("CG999")

    def test_rule_class_lookup(self):
        assert rule_class("CG015").rule_id == "CG015"

    def test_cli_explain_exit_codes(self, capsys):
        assert lint_main(["--explain", "cg017"]) == 0
        out = capsys.readouterr().out
        assert "CG017" in out and "Fix:" in out
        assert lint_main(["--explain", "CG999"]) == 2
