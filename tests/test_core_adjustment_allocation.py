"""Tests for dynamic adjustment (Eq 1, model replacement) and the
allocation planner."""

import numpy as np
import pytest

from repro.core.adjustment import (
    DynamicAdjuster,
    backend_rotation,
    redundancy_allocation,
)
from repro.core.allocation import AllocationPlanner
from repro.games.category import GameCategory
from repro.platform_.resources import ResourceVector
from repro.streaming.encoder import EncoderModel


class TestRedundancyEq1:
    def test_formula(self):
        """Eq 1: S = (1 − P) × M."""
        M = ResourceVector(cpu=80, gpu=60)
        S = redundancy_allocation(0.9, M)
        assert S.cpu == pytest.approx(8.0)
        assert S.gpu == pytest.approx(6.0)

    def test_perfect_accuracy_zero_margin(self):
        S = redundancy_allocation(1.0, ResourceVector.full(100))
        assert S == ResourceVector.zeros()

    def test_worse_model_bigger_margin(self):
        M = ResourceVector(gpu=50)
        assert redundancy_allocation(0.5, M).gpu > redundancy_allocation(0.9, M).gpu

    def test_accuracy_bounds(self):
        with pytest.raises(ValueError):
            redundancy_allocation(1.5, ResourceVector.zeros())


class TestBackendRotation:
    def test_console_prefers_dtc(self):
        assert backend_rotation(GameCategory.CONSOLE)[0] == "dtc"

    def test_web_prefers_rf(self):
        assert backend_rotation(GameCategory.WEB)[0] == "rf"

    def test_user_heavy_prefer_gbdt(self):
        assert backend_rotation(GameCategory.MOBILE)[0] == "gbdt"
        assert backend_rotation(GameCategory.MMO)[0] == "gbdt"

    def test_rotation_covers_all_backends(self):
        for cat in GameCategory:
            assert sorted(backend_rotation(cat)) == ["dtc", "gbdt", "rf"]


class TestDynamicAdjuster:
    def test_replacement_after_consecutive_errors(self):
        adj = DynamicAdjuster(GameCategory.CONSOLE, replace_after=3)
        first = adj.current_backend
        assert not adj.record_error()
        assert not adj.record_error()
        assert adj.record_error()  # third consecutive → replace
        assert adj.current_backend != first
        assert adj.replacements == 1

    def test_success_resets_streak(self):
        adj = DynamicAdjuster(GameCategory.CONSOLE, replace_after=2)
        adj.record_error()
        adj.record_success()
        assert not adj.record_error()  # streak restarted

    def test_observed_accuracy(self):
        adj = DynamicAdjuster(GameCategory.WEB)
        adj.record_success()
        adj.record_success()
        adj.record_error()
        assert adj.observed_accuracy == pytest.approx(2 / 3)

    def test_accuracy_defaults_to_one(self):
        assert DynamicAdjuster(GameCategory.WEB).observed_accuracy == 1.0

    def test_transients_counted_separately(self):
        adj = DynamicAdjuster(GameCategory.WEB)
        adj.record_transient()
        assert adj.transients_reverted == 1
        assert adj.total_errors == 0

    def test_rotation_wraps(self):
        adj = DynamicAdjuster(GameCategory.WEB, replace_after=1)
        seen = {adj.current_backend}
        for _ in range(5):
            adj.record_error()
            seen.add(adj.current_backend)
        assert seen == {"dtc", "rf", "gbdt"}

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            DynamicAdjuster(GameCategory.WEB, replace_after=0)


class TestAllocationPlanner:
    def test_execution_plan_covers_stage_peak(self, toy_profile):
        lib = toy_profile.library
        planner = AllocationPlanner(lib, accuracy=0.9)
        for t in lib.execution_types:
            plan = planner.for_execution(t, redundancy=False)
            assert plan.dominates(
                ResourceVector.from_array(lib.stats(t).peak)
            )

    def test_redundancy_adds_eq1_margin(self, toy_profile):
        lib = toy_profile.library
        planner = AllocationPlanner(lib, accuracy=0.8)
        t = lib.execution_types[0]
        bare = planner.for_execution(t, redundancy=False)
        fat = planner.for_execution(t, redundancy=True)
        expected = redundancy_allocation(0.8, lib.max_peak())
        np.testing.assert_allclose(
            (fat - bare).array, expected.array, atol=1e-9
        )

    def test_loading_plan_is_cpu_heavy(self, toy_profile):
        planner = AllocationPlanner(toy_profile.library)
        plan = planner.for_loading()
        assert plan.cpu > 3 * plan.gpu

    def test_throttled_loading_cuts_cpu_only(self, toy_profile):
        planner = AllocationPlanner(toy_profile.library)
        full = planner.for_loading()
        throttled = planner.throttled_loading(0.25)
        assert throttled.cpu == pytest.approx(full.cpu * 0.25)
        assert throttled.gpu == full.gpu

    def test_peak_plan_dominates_all_stage_plans(self, toy_profile):
        lib = toy_profile.library
        planner = AllocationPlanner(lib, accuracy=1.0)
        peak = planner.peak_plan()
        for t in lib.execution_types:
            assert peak.dominates(planner.for_execution(t, redundancy=False))

    def test_encoder_overhead_charged_to_cpu(self, toy_profile):
        lib = toy_profile.library
        bare = AllocationPlanner(lib).for_loading()
        with_enc = AllocationPlanner(lib, encoder=EncoderModel()).for_loading()
        assert with_enc.cpu > bare.cpu
        assert with_enc.gpu == bare.gpu

    def test_plans_clip_at_100(self, toy_profile):
        planner = AllocationPlanner(toy_profile.library, accuracy=0.0)
        plan = planner.for_execution(
            toy_profile.library.execution_types[0], redundancy=True
        )
        assert plan.fits_within(ResourceVector.full(100.0))

    def test_set_accuracy_validates(self, toy_profile):
        planner = AllocationPlanner(toy_profile.library)
        with pytest.raises(ValueError):
            planner.set_accuracy(2.0)
