"""Tests for the server model and the capped allocator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform_.allocator import AllocationError, Allocator
from repro.platform_.resources import ResourceVector
from repro.platform_.server import CapacityError, GPUDevice, Server


def rv(cpu=0, gpu=0, gpu_mem=0, ram=0):
    return ResourceVector(cpu=cpu, gpu=gpu, gpu_mem=gpu_mem, ram=ram)


class TestServer:
    def test_default_has_two_gpus(self):
        assert Server("s").n_gpus == 2

    def test_place_and_available(self):
        s = Server("s", gpus=[GPUDevice()])
        s.place("a", 0, rv(cpu=30, gpu=40))
        avail = s.available(0)
        assert avail.cpu == 70 and avail.gpu == 60

    def test_cpu_shared_across_gpus(self):
        s = Server("s")
        s.place("a", 0, rv(cpu=60))
        assert s.available(1).cpu == 40  # host CPU is shared

    def test_gpu_is_per_device(self):
        s = Server("s")
        s.place("a", 0, rv(gpu=80))
        assert s.available(1).gpu == 100

    def test_place_rejects_overflow(self):
        s = Server("s", gpus=[GPUDevice()])
        s.place("a", 0, rv(gpu=70))
        with pytest.raises(CapacityError):
            s.place("b", 0, rv(gpu=40))

    def test_duplicate_session(self):
        s = Server("s")
        s.place("a", 0, rv(cpu=1))
        with pytest.raises(ValueError):
            s.place("a", 1, rv(cpu=1))

    def test_negative_allocation_rejected(self):
        s = Server("s")
        with pytest.raises(ValueError):
            s.place("a", 0, ResourceVector.from_array([-1, 0, 0, 0]))

    def test_set_allocation_checks_capacity(self):
        s = Server("s", gpus=[GPUDevice()])
        s.place("a", 0, rv(gpu=50))
        s.place("b", 0, rv(gpu=40))
        with pytest.raises(CapacityError):
            s.set_allocation("a", rv(gpu=70))
        # failed retune must not corrupt state
        assert s.placements["a"].allocation.gpu == 50

    def test_remove_frees(self):
        s = Server("s", gpus=[GPUDevice()])
        s.place("a", 0, rv(gpu=90))
        s.remove("a")
        assert s.available(0).gpu == 100

    def test_remove_unknown(self):
        with pytest.raises(KeyError):
            Server("s").remove("ghost")

    def test_bad_gpu_index(self):
        with pytest.raises(IndexError):
            Server("s").available(5)

    def test_headroom_fraction(self):
        s = Server("s", gpus=[GPUDevice()])
        s.place("a", 0, rv(cpu=50))
        assert s.headroom_fraction() == pytest.approx(0.5)

    def test_least_loaded_gpu(self):
        s = Server("s")
        s.place("a", 0, rv(gpu=60))
        assert s.least_loaded_gpu() == 1

    def test_needs_a_gpu(self):
        with pytest.raises(ValueError):
            Server("s", gpus=[])


class TestAllocator:
    def make(self, cap=0.95):
        server = Server("s", gpus=[GPUDevice()])
        return Allocator(server, utilization_cap=cap)

    def test_cap_enforced_on_place(self):
        a = self.make()
        a.place("x", rv(gpu=90))
        with pytest.raises(AllocationError):
            a.place("y", rv(gpu=10))  # 100 > 95 budget

    def test_cap_enforced_on_retune(self):
        a = self.make()
        a.place("x", rv(gpu=50))
        a.place("y", rv(gpu=40))
        with pytest.raises(AllocationError):
            a.retune("x", rv(gpu=60))

    def test_retune_clamped_never_fails(self):
        a = self.make()
        a.place("x", rv(gpu=50))
        a.place("y", rv(gpu=40))
        granted = a.retune_clamped("x", rv(gpu=80))
        assert granted.gpu == pytest.approx(55)  # 95 - 40

    def test_release_frees_budget(self):
        a = self.make()
        a.place("x", rv(gpu=90))
        a.release("x")
        a.place("y", rv(gpu=90))

    def test_events_audit_trail(self):
        a = self.make()
        a.place("x", rv(gpu=10), time=1.0)
        a.retune("x", rv(gpu=20), time=2.0)
        a.release("x", time=3.0)
        actions = [e.action for e in a.events]
        assert actions == ["place", "retune", "release"]

    def test_multi_gpu_spreads(self):
        server = Server("s")
        a = Allocator(server)
        a.place("x", rv(gpu=80))
        a.place("y", rv(gpu=80))
        gpus = {p.gpu_index for p in server.placements.values()}
        assert gpus == {0, 1}

    def test_unknown_session(self):
        a = self.make()
        with pytest.raises(KeyError):
            a.retune("ghost", rv())
        with pytest.raises(KeyError):
            a.allocation_of("ghost")

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            Allocator(Server("s"), utilization_cap=1.0)


@settings(max_examples=40, deadline=None)
@given(
    allocs=st.lists(
        st.tuples(st.floats(0, 60), st.floats(0, 60)), min_size=1, max_size=6
    ),
    retunes=st.lists(st.floats(0, 120), min_size=0, max_size=6),
)
def test_conservation_property(allocs, retunes):
    """Property: whatever sequence of places/clamped retunes happens, the
    summed allocations never exceed the cap on any dimension."""
    server = Server("s", gpus=[GPUDevice()])
    a = Allocator(server, utilization_cap=0.95)
    placed = []
    for i, (cpu, gpu) in enumerate(allocs):
        try:
            a.place(f"s{i}", rv(cpu=cpu, gpu=gpu))
            placed.append(f"s{i}")
        except AllocationError:
            pass
    for j, target in enumerate(retunes):
        if placed:
            a.retune_clamped(placed[j % len(placed)], rv(cpu=target, gpu=target))
    host = server.allocated_host()
    dev = server.allocated_gpu(0)
    assert host[0] <= 95 + 1e-6
    assert dev[0] <= 95 + 1e-6
    assert dev[1] <= 95 + 1e-6
