"""Tests for repro.util.rng: determinism and stream independence."""

import numpy as np
import pytest

from repro.util.rng import as_rng, derive_seed, spawn_rngs, stable_hash


class TestAsRng:
    def test_int_seed_is_deterministic(self):
        a = as_rng(7).normal(size=5)
        b = as_rng(7).normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(as_rng(1).normal(size=5), as_rng(2).normal(size=5))

    def test_generator_passthrough_shares_state(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_children_are_independent_of_count(self):
        # The first two children must not change when more are spawned.
        a = [g.normal() for g in spawn_rngs(42, 2)]
        b = [g.normal() for g in spawn_rngs(42, 5)[:2]]
        assert a == b

    def test_children_differ_from_each_other(self):
        kids = spawn_rngs(42, 3)
        draws = [g.normal(size=4) for g in kids]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_from_generator(self):
        g = np.random.default_rng(3)
        kids = spawn_rngs(g, 2)
        assert len(kids) == 2
        assert not np.allclose(kids[0].normal(size=3), kids[1].normal(size=3))


class TestStableHash:
    def test_stable_across_calls(self):
        assert stable_hash("genshin") == stable_hash("genshin")

    def test_differs_between_strings(self):
        assert stable_hash("genshin") != stable_hash("contra")

    def test_mod_range(self):
        for s in ("a", "b", "longer-string"):
            assert 0 <= stable_hash(s, mod=97) < 97

    def test_bad_mod(self):
        with pytest.raises(ValueError):
            stable_hash("x", mod=0)

    def test_known_value_regression(self):
        # FNV-1a of the empty string is the offset basis.
        assert stable_hash("") == 0xCBF29CE484222325


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_order_sensitive(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_base_sensitive(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_usable_as_numpy_seed(self):
        np.random.default_rng(derive_seed(0, "game", "player"))
