"""End-to-end integration tests: the full paper pipeline on real catalog
games, plus cross-strategy invariants."""

import numpy as np
import pytest

from repro.baselines import CoCGStrategy, GAugurStrategy, VBPStrategy
from repro.core.pipeline import GameProfile
from repro.core.scheduler import CoCGConfig
from repro.workloads.experiment import ColocationExperiment


@pytest.fixture(scope="module")
def small_profiles(catalog):
    """Genshin + Contra profiles on a small corpus (fast but realistic)."""
    return {
        name: GameProfile.build(
            catalog[name], n_players=4, sessions_per_player=3, seed=3
        )
        for name in ("genshin", "contra")
    }


class TestEasyPairAllStrategies:
    """Genshin + Contra is the pair every strategy can co-locate
    (paper: 'all three schemes have good performance')."""

    @pytest.mark.parametrize(
        "strategy_cls", [CoCGStrategy, GAugurStrategy, VBPStrategy]
    )
    def test_colocates_and_holds_qos(self, small_profiles, strategy_cls):
        result = ColocationExperiment(
            small_profiles, strategy_cls(), horizon=1800, seed=11
        ).run()
        assert result.completed_runs["contra"] >= 5
        assert result.completed_runs["genshin"] >= 3
        assert result.colocated_seconds > 600
        assert result.over_cap_seconds == 0
        assert result.fraction_of_best["genshin"] > 0.75

    def test_cocg_within_noise_of_static_schemes(self, small_profiles):
        results = {}
        for strat in (CoCGStrategy(), VBPStrategy()):
            results[strat.name] = ColocationExperiment(
                small_profiles, strat, horizon=1800, seed=11
            ).run().throughput
        assert results["cocg"] > 0.8 * results["vbp"]


class TestCoCGBehaviour:
    def test_stage_aware_allocation_saves_resources(self, small_profiles):
        """CoCG's mean granted ceiling must sit well below a constant
        max reservation (the Fig-10 effect)."""
        result = ColocationExperiment(
            {"genshin": small_profiles["genshin"]},
            CoCGStrategy(),
            horizon=1200,
            seed=5,
        ).run()
        telemetry = result.telemetry
        sid = telemetry.session_ids[0]
        alloc = telemetry.allocation_series(sid)
        static_peak = small_profiles["genshin"].library.max_peak().array
        mean_alloc = alloc.values.mean(axis=0)
        assert mean_alloc[1] < 0.9 * static_peak[1]

    def test_demand_mostly_covered(self, small_profiles):
        result = ColocationExperiment(
            {"genshin": small_profiles["genshin"]},
            CoCGStrategy(),
            horizon=1200,
            seed=5,
        ).run()
        telemetry = result.telemetry
        covered_total = weight = 0
        for sid in telemetry.session_ids:
            demand = telemetry.true_demand_series(sid).values
            alloc = telemetry.allocation_series(sid).values
            ok = np.all(alloc + 1e-6 >= demand, axis=1)
            covered_total += ok.sum()
            weight += len(ok)
        assert covered_total / weight > 0.7

    def test_redundancy_ablation_runs(self, small_profiles):
        config = CoCGConfig(use_redundancy=False)
        result = ColocationExperiment(
            small_profiles, CoCGStrategy(config=config), horizon=900, seed=6
        ).run()
        assert result.throughput > 0

    def test_detect_interval_ablation(self, small_profiles):
        config = CoCGConfig(detect_interval=10)
        result = ColocationExperiment(
            small_profiles, CoCGStrategy(config=config), horizon=900, seed=6
        ).run()
        assert result.throughput > 0


class TestAllocatorInvariantUnderAllStrategies:
    @pytest.mark.parametrize(
        "strategy_cls", [CoCGStrategy, GAugurStrategy, VBPStrategy]
    )
    def test_allocation_events_never_violate_cap(self, small_profiles, strategy_cls):
        exp = ColocationExperiment(
            small_profiles, strategy_cls(), horizon=900, seed=13
        )
        exp.run()
        # Replay the audit trail: at no point may the recorded ceilings
        # of concurrently-placed sessions exceed the cap.
        assert exp.allocator.server.headroom_fraction() >= 0.05 - 1e-9
