"""Tests for model/library/profile serialization round-trips."""

import json

import numpy as np
import pytest

from repro.core.pipeline import GameProfile
from repro.core.stages import StageLibrary, StageTypeId
from repro.mlkit.forest import RandomForestClassifier
from repro.mlkit.gbdt import GradientBoostedClassifier
from repro.mlkit.regression_tree import DecisionTreeRegressor
from repro.mlkit.serialize import model_from_dict, model_to_dict
from repro.mlkit.tree import DecisionTreeClassifier


@pytest.fixture
def data(rng):
    X = rng.normal(size=(120, 4))
    y = ((X[:, 0] > 0) | (X[:, 1] > 0.5)).astype(int)
    return X, y


class TestModelRoundTrips:
    def test_dtc(self, data):
        X, y = data
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        clone = model_from_dict(json.loads(json.dumps(model_to_dict(model))))
        np.testing.assert_array_equal(clone.predict(X), model.predict(X))
        np.testing.assert_allclose(clone.predict_proba(X), model.predict_proba(X))

    def test_dtr(self, data):
        X, _ = data
        y = X[:, 0] * 2 + np.sin(X[:, 1])
        model = DecisionTreeRegressor(max_depth=5).fit(X, y)
        clone = model_from_dict(model_to_dict(model))
        np.testing.assert_allclose(clone.predict(X), model.predict(X))

    def test_rf(self, data):
        X, y = data
        model = RandomForestClassifier(8, seed=0).fit(X, y)
        clone = model_from_dict(model_to_dict(model))
        np.testing.assert_allclose(clone.predict_proba(X), model.predict_proba(X))

    def test_gbdt(self, data):
        X, y = data
        model = GradientBoostedClassifier(10, seed=0).fit(X, y)
        clone = model_from_dict(model_to_dict(model))
        np.testing.assert_allclose(
            clone.decision_function(X), model.decision_function(X)
        )

    def test_string_labels_survive(self, rng):
        X = rng.normal(size=(40, 2))
        y = np.where(X[:, 0] > 0, "hot", "cold")
        model = DecisionTreeClassifier(max_depth=2).fit(X, y)
        clone = model_from_dict(model_to_dict(model))
        np.testing.assert_array_equal(clone.predict(X), model.predict(X))

    def test_unfitted_rejected(self):
        with pytest.raises(Exception):
            model_to_dict(DecisionTreeClassifier())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            model_from_dict({"kind": "svm"})

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            model_to_dict(object())


class TestLibraryRoundTrip:
    def test_full_round_trip(self, toy_profile):
        lib = toy_profile.library
        clone = StageLibrary.from_dict(
            json.loads(json.dumps(lib.to_dict()))
        )
        assert clone.game == lib.game
        np.testing.assert_allclose(clone.centers, lib.centers)
        assert clone.loading_clusters == lib.loading_clusters
        assert clone.stage_types == lib.stage_types
        for t in lib.stage_types:
            np.testing.assert_allclose(clone.stats(t).peak, lib.stats(t).peak)
            np.testing.assert_allclose(clone.stats(t).mean, lib.stats(t).mean)
            assert clone.stats(t).occurrences == lib.stats(t).occurrences
        for t in lib.execution_types:
            assert clone.transition_counts(t) == lib.transition_counts(t)

    def test_classification_identical(self, toy_profile, rng):
        lib = toy_profile.library
        clone = StageLibrary.from_dict(lib.to_dict())
        frames = rng.uniform(0, 80, size=(50, 4))
        for f in frames:
            assert clone.classify_frame(f) == lib.classify_frame(f)


class TestProfileSaveLoad:
    def test_round_trip_predictions(self, toy_profile, toy_spec, tmp_path):
        path = tmp_path / "toy.profile.json"
        toy_profile.save(path)
        loaded = GameProfile.load(path, toy_spec)
        assert set(loaded.predictors) == set(toy_profile.predictors)
        for backend in toy_profile.predictors:
            orig = toy_profile.predictors[backend]
            clone = loaded.predictors[backend]
            assert clone.accuracy_ == orig.accuracy_
            hist = orig.builder.types[:1]
            assert clone.predict_next(hist) == orig.predict_next(hist)

    def test_wrong_game_rejected(self, toy_profile, catalog, tmp_path):
        path = tmp_path / "toy.profile.json"
        toy_profile.save(path)
        with pytest.raises(ValueError, match="toygame"):
            GameProfile.load(path, catalog["contra"])

    def test_wrong_format_rejected(self, toy_spec, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            GameProfile.load(path, toy_spec)

    def test_loaded_profile_drives_scheduler(self, toy_profile, toy_spec, tmp_path):
        """A reloaded profile must be usable end-to-end."""
        from repro.baselines import CoCGStrategy
        from repro.workloads.experiment import ColocationExperiment

        path = tmp_path / "toy.profile.json"
        toy_profile.save(path)
        loaded = GameProfile.load(path, toy_spec)
        result = ColocationExperiment(
            {"toygame": loaded}, CoCGStrategy(), horizon=400, seed=1
        ).run()
        assert result.completed_runs["toygame"] >= 1
