"""Hypothesis-driven invariants across module boundaries.

These complement the per-module property tests: each one generates a
random *system* (game layout, demand pattern, curve) and asserts a
structural invariant end to end.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profiler import FrameGrainedProfiler, ProfilerConfig
from repro.core.stages import StageLibrary, StageTypeId
from repro.games.category import GameCategory
from repro.games.session import GameSession
from repro.games.spec import ClusterSpec, GameSpec, ScriptSpec, StageKind, StageSpec
from repro.mlkit.kmeans import elbow_k
from repro.platform_.resources import ResourceVector


def rv(cpu=0, gpu=0, gpu_mem=0, ram=0):
    return ResourceVector(cpu=cpu, gpu=gpu, gpu_mem=gpu_mem, ram=ram)


# ----------------------------------------------------------------------
# Random small games that always validate
# ----------------------------------------------------------------------

@st.composite
def small_games(draw):
    """A random 2–3-stage game with one loading cluster."""
    n_exec = draw(st.integers(1, 3))
    clusters = {
        "load": ClusterSpec(
            "load", rv(cpu=draw(st.integers(30, 70)), gpu=3, gpu_mem=8, ram=8),
            rv(cpu=1, gpu=0.5, gpu_mem=0.5, ram=0.5), nominal_fps=60,
        )
    }
    stages = {"boot": StageSpec("boot", StageKind.LOADING, ("load",), 6.0)}
    script_stages = ["boot"]
    for i in range(n_exec):
        cname = f"c{i}"
        gpu = 15 + 18 * i + draw(st.integers(0, 6))
        clusters[cname] = ClusterSpec(
            cname, rv(cpu=15 + 10 * i, gpu=gpu, gpu_mem=10 + 5 * i, ram=10),
            rv(cpu=1, gpu=1, gpu_mem=0.5, ram=0.5), nominal_fps=90,
        )
        sname = f"s{i}"
        stages[sname] = StageSpec(
            sname, StageKind.EXECUTION, (cname,),
            float(draw(st.integers(30, 70))), duration_scale=0.2,
        )
        script_stages.append(sname)
        if i < n_exec - 1:
            lname = f"mid{i}"
            stages[lname] = StageSpec(lname, StageKind.LOADING, ("load",), 6.0)
            script_stages.append(lname)
    stages["exit"] = StageSpec("exit", StageKind.LOADING, ("load",), 6.0)
    script_stages.append("exit")
    return GameSpec(
        name="randgame",
        category=GameCategory.WEB,
        clusters=clusters,
        stages=stages,
        scripts=(ScriptSpec("s", "random", tuple(script_stages)),),
    )


@settings(max_examples=15, deadline=None)
@given(spec=small_games(), seed=st.integers(0, 1000))
def test_session_history_partitions_timeline(spec, seed):
    """Property: a session's stage history is a contiguous partition of
    its elapsed time, in script order, with wall-time bounded length."""
    session = GameSession(spec, "s", seed=seed)
    full = ResourceVector.full(100.0)
    guard = 0
    while not session.finished:
        session.advance(full)
        guard += 1
        assert guard < 5000
    assert session.history[0][1] == 0
    assert session.history[-1][2] == session.elapsed
    for (_, _, e1), (_, s2, _) in zip(session.history[:-1], session.history[1:]):
        assert e1 == s2
    played = [name for name, _, _ in session.history]
    assert played == list(session.resolved_stage_names)


@settings(max_examples=8, deadline=None)
@given(spec=small_games(), seed=st.integers(0, 100))
def test_profiler_segmentation_partitions_frames(spec, seed):
    """Property: segmentation covers every frame exactly once, and every
    segment's type references clusters that exist in the library."""
    from repro.games.tracegen import generate_trace

    bundles = [generate_trace(spec, "s", seed=seed + i) for i in range(3)]
    profiler = FrameGrainedProfiler(
        "randgame", config=ProfilerConfig(n_clusters=len(spec.clusters))
    )
    lib = profiler.fit(bundles)
    for bundle in bundles:
        frames = bundle.frames().values
        if len(frames) == 0:
            continue
        segs = profiler.segment(frames)
        assert segs[0].start_frame == 0
        assert segs[-1].end_frame == len(frames)
        for a, b in zip(segs[:-1], segs[1:]):
            assert a.end_frame == b.start_frame
        for seg in segs:
            assert all(0 <= c < lib.n_clusters for c in seg.type_id)
            assert seg.peak.shape == (4,)
            assert np.all(seg.peak + 1e-9 >= seg.mean)


@settings(max_examples=30, deadline=None)
@given(
    true_k=st.integers(2, 6),
    drop_ratio=st.floats(0.3, 0.6),
    noise=st.floats(0.001, 0.02),
)
def test_elbow_on_ideal_curves(true_k, drop_ratio, noise):
    """Property: on an idealised curve — big structural drops down to
    true_k, then a tiny geometric tail — the drop criterion finds
    exactly true_k, provided the last structural drop clears the
    criterion's 3 %-of-span noise floor (its documented contract)."""
    from hypothesis import assume

    ks = list(range(1, 11))
    sse = []
    value = 1.0
    for k in ks:
        sse.append(value)
        if k < true_k:
            value *= drop_ratio  # structural drop
        else:
            value *= 1 - noise  # flat tail
    span = sse[0] - sse[-1]
    last_structural_drop = sse[true_k - 2] - sse[true_k - 1]
    assume(last_structural_drop >= 0.035 * span)
    assert elbow_k(ks, sse) == true_k


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)), min_size=3, max_size=30
    )
)
def test_library_classification_is_nearest_centroid(data):
    """Property: classify_frame always returns the nearest centroid."""
    centers = np.array(
        [[10, 5, 5, 5], [50, 50, 20, 20], [80, 10, 30, 10]], dtype=float
    )
    lib = StageLibrary("g", centers, [0])
    for cpu, gpu in data:
        frame = np.array([cpu, gpu, 10.0, 10.0])
        got = lib.classify_frame(frame)
        dists = np.linalg.norm(centers - frame, axis=1)
        assert got == int(np.argmin(dists))


@settings(max_examples=20, deadline=None)
@given(
    seeds=st.lists(st.integers(0, 10_000), min_size=1, max_size=4, unique=True)
)
def test_stage_type_ids_are_order_insensitive(seeds):
    """Property: any permutation of cluster indices yields the same id."""
    rng = np.random.default_rng(seeds[0])
    clusters = rng.choice(10, size=rng.integers(1, 5), replace=False)
    a = StageTypeId(clusters.tolist())
    b = StageTypeId(reversed(clusters.tolist()))
    assert a == b and hash(a) == hash(b)
