"""Tests for feature importances across mlkit models and the predictor
diagnostics built on them."""

import numpy as np
import pytest

from repro.mlkit.forest import RandomForestClassifier
from repro.mlkit.gbdt import GradientBoostedClassifier
from repro.mlkit.regression_tree import DecisionTreeRegressor
from repro.mlkit.tree import DecisionTreeClassifier


@pytest.fixture
def single_feature_data(rng):
    X = rng.normal(size=(300, 5))
    y = (X[:, 2] > 0).astype(int)  # only feature 2 carries signal
    return X, y


class TestImportances:
    @pytest.mark.parametrize(
        "model",
        [
            DecisionTreeClassifier(max_depth=4),
            RandomForestClassifier(10, seed=0),
            GradientBoostedClassifier(10, seed=0),
        ],
        ids=["dtc", "rf", "gbdt"],
    )
    def test_signal_feature_dominates(self, single_feature_data, model):
        X, y = single_feature_data
        model.fit(X, y)
        fi = model.feature_importances_
        assert fi.shape == (5,)
        assert np.argmax(fi) == 2
        assert fi[2] > 0.5

    def test_normalised_to_one(self, single_feature_data):
        X, y = single_feature_data
        fi = DecisionTreeClassifier(max_depth=4).fit(X, y).feature_importances_
        assert fi.sum() == pytest.approx(1.0)
        assert np.all(fi >= 0)

    def test_regressor_importances(self, rng):
        X = rng.normal(size=(200, 3))
        y = 3 * X[:, 1] + rng.normal(scale=0.1, size=200)
        fi = DecisionTreeRegressor(max_depth=4).fit(X, y).feature_importances_
        assert np.argmax(fi) == 1

    def test_stump_is_all_zero(self, rng):
        X = rng.normal(size=(20, 3))
        tree = DecisionTreeClassifier().fit(X, np.ones(20))
        np.testing.assert_array_equal(tree.feature_importances_, np.zeros(3))

    def test_requires_fit(self):
        with pytest.raises(Exception):
            DecisionTreeClassifier().feature_importances_

    def test_split_signal_shared(self, rng):
        """Two equally informative features both get credit in a forest."""
        X = rng.normal(size=(400, 4))
        y = ((X[:, 0] + X[:, 3]) > 0).astype(int)
        fi = RandomForestClassifier(30, seed=0).fit(X, y).feature_importances_
        assert fi[0] > 0.2 and fi[3] > 0.2
        assert fi[1] < 0.15 and fi[2] < 0.15


class TestPredictorFeatureReport:
    def test_report_names_match_feature_space(self, toy_profile):
        predictor = toy_profile.predictors["dtc"]
        names = predictor.feature_names()
        assert len(names) == predictor.builder.n_base_features
        assert names[-1] == "position"

    def test_toy_stump_reports_nothing(self, toy_profile):
        """The toy game has one deterministic transition, so the model is
        a single-class stump with zero importances — an empty report."""
        assert toy_profile.predictors["dtc"].feature_report() == []

    def test_report_highlights_history_features(self, genshin_profile):
        """Genshin's next task depends on what has been played so far:
        history/count features must dominate the report."""
        predictor = genshin_profile.predictors["dtc"]
        report = predictor.feature_report(top=5)
        assert report, "expected non-empty report"
        top_name, top_weight = report[0]
        assert any(k in top_name for k in ("hist[", "count(", "position"))
        assert top_weight > 0.15

    def test_untrained_raises(self, toy_profile):
        from repro.core.predictor import StagePredictor
        from repro.games.category import GameCategory

        fresh = StagePredictor(toy_profile.library, GameCategory.WEB)
        with pytest.raises(RuntimeError):
            fresh.feature_report()

    def test_mmo_report_includes_group_features(self, catalog):
        """DOTA2's predictor must expose (and typically weight) the
        co-login group block."""
        from repro.core.pipeline import GameProfile

        profile = GameProfile.build(
            catalog["dota2"], n_players=6, sessions_per_player=4, seed=3,
            backends=("dtc",),
        )
        predictor = profile.predictors["dtc"]
        names = predictor.feature_names()
        assert any(n.startswith("group(") for n in names)
        report = dict(predictor.feature_report(top=12))
        assert any(n.startswith("group(") for n in report), report
