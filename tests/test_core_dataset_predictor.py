"""Tests for dataset policies (§IV-B1) and the stage predictor (§IV-B)."""

import numpy as np
import pytest

from repro.core.dataset import StageDatasetBuilder
from repro.core.predictor import (
    BACKENDS,
    JudgmentKind,
    PredictionCostModel,
    StagePredictor,
    make_backend,
)
from repro.core.profiler import FrameGrainedProfiler, ProfilerConfig
from repro.core.stages import StageTypeId
from repro.games.category import GameCategory
from repro.games.tracegen import generate_corpus


@pytest.fixture(scope="module")
def toy_segments(toy_spec):
    bundles = generate_corpus(toy_spec, n_players=4, sessions_per_player=3, seed=6)
    prof = FrameGrainedProfiler("toy", config=ProfilerConfig(n_clusters=3))
    lib = prof.fit(bundles)
    segs = [(b.player_id, prof.segment_with(lib, b.frames().values)) for b in bundles]
    return lib, segs


class TestDatasetBuilder:
    def test_sequence_extraction(self, toy_segments):
        lib, segs = toy_segments
        builder = StageDatasetBuilder(lib)
        for _, s in segs:
            seq = builder.sequence_of(s)
            assert len(seq) == 2  # quiet then heavy
            assert seq[0] != seq[1]

    def test_web_pools_everyone(self, toy_segments):
        lib, segs = toy_segments
        builder = StageDatasetBuilder(lib)
        ds = builder.build(segs, GameCategory.WEB)
        assert set(ds) == {"*"}
        assert ds["*"].n_samples == len(segs)  # one transition per session
        assert len(set(ds["*"].players)) == 4

    def test_mobile_builds_per_player(self, toy_segments):
        lib, segs = toy_segments
        builder = StageDatasetBuilder(lib)
        ds = builder.build(segs, GameCategory.MOBILE)
        assert len(ds) == 4
        for player, d in ds.items():
            assert set(d.players) == {player}

    def test_console_concatenates_campaign(self, toy_segments):
        lib, segs = toy_segments
        builder = StageDatasetBuilder(lib)
        ds = builder.build(segs, GameCategory.CONSOLE)["*"]
        # Concatenation creates cross-session samples: 4 players × (6-1).
        assert ds.n_samples == 4 * 5

    def test_mmo_adds_group_features(self, toy_segments):
        lib, segs = toy_segments
        builder = StageDatasetBuilder(lib)
        web = builder.build(segs, GameCategory.WEB)["*"]
        mmo = builder.build(segs, GameCategory.MMO)["*"]
        assert mmo.X.shape[1] == web.X.shape[1] + builder.n_types

    def test_encode_history_layout(self, toy_segments):
        lib, _ = toy_segments
        builder = StageDatasetBuilder(lib, history=2)
        feats = builder.encode_history([0, 1], 2)
        k = builder.n_types
        # most recent stage (1) first block, previous (0) second block
        assert feats[1] == 1.0
        assert feats[k + 0] == 1.0
        assert feats.shape == (builder.n_base_features,)

    def test_encode_history_padding(self, toy_segments):
        lib, _ = toy_segments
        builder = StageDatasetBuilder(lib, history=3)
        feats = builder.encode_history([], 0)
        assert feats[: 3 * builder.n_types].sum() == 0

    def test_group_hist_shape_checked(self, toy_segments):
        lib, _ = toy_segments
        builder = StageDatasetBuilder(lib)
        with pytest.raises(ValueError):
            builder.encode_history([0], 1, group_hist=np.zeros(99))

    def test_invalid_params(self, toy_segments):
        lib, _ = toy_segments
        with pytest.raises(ValueError):
            StageDatasetBuilder(lib, history=0)
        with pytest.raises(ValueError):
            StageDatasetBuilder(lib, group_size=1)


class TestStagePredictor:
    def test_train_and_predict_toy(self, toy_segments):
        lib, segs = toy_segments
        pred = StagePredictor(lib, GameCategory.WEB, backend="dtc", seed=0)
        acc = pred.train(segs)
        assert acc > 0.95  # deterministic quiet→heavy transition
        builder = pred.builder
        quiet, heavy = builder.types if builder.types[0] != builder.types[1] else ()
        # After the first stage, the second is always the other type.
        first = builder.types[0]
        predicted, conf = pred.predict_next([first])
        assert predicted in builder.types
        assert 0 <= conf <= 1

    def test_empty_history_prior(self, toy_segments):
        lib, segs = toy_segments
        pred = StagePredictor(lib, GameCategory.WEB, seed=0)
        pred.train(segs)
        t, conf = pred.predict_next([])
        assert t in pred.builder.types
        assert conf > 0

    def test_unknown_history_types_skipped(self, toy_segments):
        lib, segs = toy_segments
        pred = StagePredictor(lib, GameCategory.WEB, seed=0)
        pred.train(segs)
        ghost = StageTypeId([7, 8])
        t, _ = pred.predict_next([ghost])
        assert t in pred.builder.types

    def test_untrained_raises(self, toy_segments):
        lib, _ = toy_segments
        with pytest.raises(RuntimeError):
            StagePredictor(lib, GameCategory.WEB).predict_next([])

    def test_all_backends_train(self, toy_segments):
        lib, segs = toy_segments
        for backend in BACKENDS:
            pred = StagePredictor(lib, GameCategory.WEB, backend=backend, seed=0)
            assert pred.train(segs) > 0.9

    def test_invalid_backend(self, toy_segments):
        lib, _ = toy_segments
        with pytest.raises(ValueError):
            StagePredictor(lib, GameCategory.WEB, backend="svm")
        with pytest.raises(ValueError):
            make_backend("svm")

    def test_mobile_falls_back_for_unknown_player(self, toy_segments):
        lib, segs = toy_segments
        pred = StagePredictor(lib, GameCategory.MOBILE, seed=0)
        pred.train(segs)
        t, _ = pred.predict_next([pred.builder.types[0]], player_id="stranger")
        assert t in pred.builder.types


class TestJudgment:
    def test_same_stage(self, toy_profile):
        lib = toy_profile.library
        pred = toy_profile.predictors["dtc"]
        quiet_type = min(lib.execution_types, key=lambda t: lib.stats(t).mean[1])
        frame = lib.stats(quiet_type).mean
        j = pred.judge(frame, quiet_type)
        assert j.kind is JudgmentKind.SAME

    def test_loading_detected(self, toy_profile):
        lib = toy_profile.library
        pred = toy_profile.predictors["dtc"]
        (lc,) = lib.loading_clusters
        j = pred.judge(lib.centers[lc], lib.execution_types[0])
        assert j.kind is JudgmentKind.LOADING

    def test_mismatch_rematches_known_type(self, toy_profile):
        lib = toy_profile.library
        pred = toy_profile.predictors["dtc"]
        quiet, heavy = sorted(
            lib.execution_types, key=lambda t: lib.stats(t).mean[1]
        )
        frame = lib.stats(heavy).mean
        j = pred.judge(frame, quiet)
        assert j.kind is JudgmentKind.MISMATCH
        assert j.matched_type == heavy


class TestPredictionCostModel:
    def test_paper_range(self):
        """Fig 12: prediction takes 3–13 s across the catalog's games."""
        model = PredictionCostModel()
        for n_types in (2, 3, 4, 5, 6):
            for backend in BACKENDS:
                t = model.predict_seconds(n_types, backend)
                assert 3.0 <= t <= 13.0, (n_types, backend)

    def test_monotone_in_types(self):
        m = PredictionCostModel()
        assert m.predict_seconds(6) > m.predict_seconds(2)

    def test_backend_ordering(self):
        m = PredictionCostModel()
        assert (
            m.predict_seconds(4, "dtc")
            < m.predict_seconds(4, "rf")
            < m.predict_seconds(4, "gbdt")
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            PredictionCostModel().predict_seconds(0)
        with pytest.raises(ValueError):
            PredictionCostModel().predict_seconds(3, "svm")
