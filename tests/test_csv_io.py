"""Tests for CSV telemetry interchange and profiling real-style traces."""

import numpy as np
import pytest

from repro.core.profiler import FrameGrainedProfiler, ProfilerConfig
from repro.games.tracegen import generate_trace
from repro.platform_.resources import DIMENSIONS
from repro.util.timeseries import ResourceSeries


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path, rng):
        series = ResourceSeries(
            rng.uniform(0, 100, size=(30, 4)), DIMENSIONS, period=1.0, start=5.0
        )
        path = tmp_path / "trace.csv"
        series.to_csv(path)
        clone = ResourceSeries.from_csv(path)
        assert clone.columns == series.columns
        assert clone.period == series.period
        assert clone.start == series.start
        np.testing.assert_allclose(clone.values, series.values, rtol=1e-5)

    def test_non_second_period(self, tmp_path):
        series = ResourceSeries(np.ones((4, 2)), ("a", "b"), period=5.0)
        path = tmp_path / "t.csv"
        series.to_csv(path)
        assert ResourceSeries.from_csv(path).period == 5.0

    def test_missing_time_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("cpu,gpu\n1,2\n")
        with pytest.raises(ValueError, match="time"):
            ResourceSeries.from_csv(path)

    def test_nonuniform_sampling_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,cpu\n0,1\n1,1\n3,1\n")
        with pytest.raises(ValueError, match="uniform"):
            ResourceSeries.from_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("time,cpu\n")
        with pytest.raises(ValueError):
            ResourceSeries.from_csv(path)

    def test_single_row(self, tmp_path):
        path = tmp_path / "one.csv"
        path.write_text("time,cpu,gpu\n0,10,20\n")
        series = ResourceSeries.from_csv(path)
        assert series.n_samples == 1
        assert series.column("gpu")[0] == 20


class TestProfilingFromCsv:
    def test_profiler_accepts_csv_traces(self, toy_spec, tmp_path):
        """The bring-your-own-telemetry path: export traces to CSV, read
        them back, profile them — same library as the in-memory path."""
        bundles = [
            generate_trace(toy_spec, "full", seed=s) for s in range(4)
        ]
        paths = []
        for i, b in enumerate(bundles):
            p = tmp_path / f"trace{i}.csv"
            b.series.to_csv(p)
            paths.append(p)
        reloaded = [ResourceSeries.from_csv(p) for p in paths]

        direct = FrameGrainedProfiler(
            "toy", config=ProfilerConfig(n_clusters=3)
        ).fit([b.series for b in bundles])
        via_csv = FrameGrainedProfiler(
            "toy", config=ProfilerConfig(n_clusters=3)
        ).fit(reloaded)
        assert via_csv.stage_types == direct.stage_types
        np.testing.assert_allclose(
            np.sort(via_csv.centers, axis=0),
            np.sort(direct.centers, axis=0),
            atol=0.01,
        )
