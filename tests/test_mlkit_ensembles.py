"""Tests for the random forest and gradient-boosted classifiers."""

import numpy as np
import pytest

from repro.mlkit.forest import RandomForestClassifier
from repro.mlkit.gbdt import GradientBoostedClassifier


def spiral_data(rng, n=300, noise=0.08):
    """Two interleaved spirals — needs a nonlinear decision boundary."""
    t = rng.uniform(0.3, 3.0, size=n)
    label = rng.integers(0, 2, size=n)
    angle = t * 2.5 + label * np.pi
    X = np.stack([t * np.cos(angle), t * np.sin(angle)], axis=1)
    X += rng.normal(scale=noise, size=X.shape)
    return X, label


class TestRandomForest:
    def test_beats_chance_on_spirals(self, rng):
        X, y = spiral_data(rng)
        rf = RandomForestClassifier(40, seed=0).fit(X[:200], y[:200])
        assert rf.score(X[200:], y[200:]) > 0.85

    def test_deterministic_under_seed(self, rng):
        X, y = spiral_data(rng, n=120)
        a = RandomForestClassifier(10, seed=5).fit(X, y).predict(X)
        b = RandomForestClassifier(10, seed=5).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_proba_rows_sum_to_one(self, rng):
        X, y = spiral_data(rng, n=100)
        rf = RandomForestClassifier(15, seed=0).fit(X, y)
        p = rf.predict_proba(X)
        np.testing.assert_allclose(p.sum(axis=1), 1.0)

    def test_multiclass(self, rng):
        X = np.concatenate([rng.normal(c, 0.5, size=(50, 2)) for c in ([0, 0], [5, 0], [0, 5])])
        y = np.repeat([0, 1, 2], 50)
        rf = RandomForestClassifier(20, seed=0).fit(X, y)
        assert rf.score(X, y) > 0.97

    def test_string_labels(self, rng):
        X = rng.normal(size=(60, 2))
        y = np.where(X[:, 0] > 0, "pos", "neg")
        rf = RandomForestClassifier(10, seed=0).fit(X, y)
        assert set(rf.predict(X)) <= {"pos", "neg"}

    def test_max_features_int(self, rng):
        X, y = spiral_data(rng, n=80)
        RandomForestClassifier(5, max_features=1, seed=0).fit(X, y)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(0)
        with pytest.raises(ValueError):
            RandomForestClassifier(5, max_features="log2")

    def test_no_bootstrap(self, rng):
        X, y = spiral_data(rng, n=80)
        rf = RandomForestClassifier(5, bootstrap=False, seed=0).fit(X, y)
        assert rf.score(X, y) > 0.9


class TestGBDT:
    def test_beats_chance_on_spirals(self, rng):
        X, y = spiral_data(rng)
        gb = GradientBoostedClassifier(60, max_depth=3, seed=0).fit(X[:200], y[:200])
        assert gb.score(X[200:], y[200:]) > 0.85

    def test_training_loss_decreases(self, rng):
        X, y = spiral_data(rng, n=150)
        gb = GradientBoostedClassifier(30, seed=0).fit(X, y)
        losses = np.asarray(gb.train_losses_)
        assert losses[-1] < losses[0]
        # Mostly monotone: allow tiny numerical wiggles.
        assert np.sum(np.diff(losses) > 1e-6) <= 2

    def test_staged_accuracy_improves(self, rng):
        X, y = spiral_data(rng, n=200)
        gb = GradientBoostedClassifier(40, seed=0).fit(X, y)
        staged = gb.staged_accuracy(X, y)
        assert staged[-1] >= staged[0]
        assert staged[-1] > 0.9

    def test_multiclass_probabilities(self, rng):
        X = np.concatenate([rng.normal(c, 0.6, size=(40, 2)) for c in ([0, 0], [4, 0], [0, 4])])
        y = np.repeat(["a", "b", "c"], 40)
        gb = GradientBoostedClassifier(25, seed=0).fit(X, y)
        p = gb.predict_proba(X)
        np.testing.assert_allclose(p.sum(axis=1), 1.0)
        assert gb.score(X, y) > 0.95

    def test_subsample(self, rng):
        X, y = spiral_data(rng, n=120)
        gb = GradientBoostedClassifier(20, subsample=0.7, seed=0).fit(X, y)
        assert gb.score(X, y) > 0.8

    def test_deterministic_under_seed(self, rng):
        X, y = spiral_data(rng, n=100)
        a = GradientBoostedClassifier(10, seed=2).fit(X, y).decision_function(X)
        b = GradientBoostedClassifier(10, seed=2).fit(X, y).decision_function(X)
        np.testing.assert_allclose(a, b)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GradientBoostedClassifier(0)
        with pytest.raises(ValueError):
            GradientBoostedClassifier(5, learning_rate=0)
        with pytest.raises(ValueError):
            GradientBoostedClassifier(5, subsample=1.5)

    def test_feature_mismatch_raises(self, rng):
        X, y = spiral_data(rng, n=60)
        gb = GradientBoostedClassifier(5, seed=0).fit(X, y)
        with pytest.raises(ValueError):
            gb.predict(np.zeros((2, 5)))
