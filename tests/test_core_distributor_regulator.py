"""Tests for the Algorithm-1 distributor and the regulator."""

import pytest

from repro.core.distributor import AdmissionDecision, Distributor
from repro.core.regulator import Regulator, RegulatorConfig
from repro.platform_.resources import ResourceVector


def rv(cpu=0, gpu=0, gpu_mem=0, ram=0):
    return ResourceVector(cpu=cpu, gpu=gpu, gpu_mem=gpu_mem, ram=ram)


class FakeTask:
    """A scripted RunningTaskView."""

    def __init__(self, current, peaks, minimum=None):
        self.current_allocation = current
        self._peaks = peaks
        self._min = minimum

    def predicted_peaks(self, horizon):
        return self._peaks[:horizon]

    def min_allocation(self):
        return self._min if self._min is not None else self.current_allocation


BUDGET = ResourceVector.full(95.0)


class TestDistributor:
    def test_empty_server_admits_fitting_game(self):
        d = Distributor(BUDGET)
        assert d.can_admit(rv(cpu=30), rv(gpu=60), []).admitted

    def test_empty_server_rejects_oversized_game(self):
        d = Distributor(BUDGET)
        assert not d.can_admit(rv(cpu=30), rv(gpu=99), []).admitted

    def test_no_room_to_boot(self):
        d = Distributor(BUDGET)
        task = FakeTask(rv(cpu=90), [rv(cpu=90)])
        decision = d.can_admit(rv(cpu=10), rv(cpu=5), [task])
        assert not decision.admitted
        assert "boot" in decision.reason

    def test_predicted_peaks_gate_admission(self):
        d = Distributor(BUDGET, horizon=2)
        # currently cheap but predicted to peak at 80 gpu
        task = FakeTask(rv(gpu=20), [rv(gpu=20), rv(gpu=80)])
        ok = d.can_admit(rv(gpu=5), rv(gpu=10), [task])
        assert ok.admitted  # 80 + 10 fits
        bad = d.can_admit(rv(gpu=5), rv(gpu=30), [task])
        assert not bad.admitted  # 80 + 30 > 95

    def test_horizon_limits_lookahead(self):
        task = FakeTask(rv(gpu=10), [rv(gpu=10), rv(gpu=10), rv(gpu=90)])
        near = Distributor(BUDGET, horizon=2)
        far = Distributor(BUDGET, horizon=3)
        steady = rv(gpu=30)
        assert near.can_admit(rv(gpu=5), steady, [task]).admitted
        assert not far.can_admit(rv(gpu=5), steady, [task]).admitted

    def test_overshoot_tolerance_admits_borderline(self):
        task = FakeTask(rv(gpu=50), [rv(gpu=60)])
        strict = Distributor(BUDGET, overshoot_tolerance=0.0)
        loose = Distributor(BUDGET, overshoot_tolerance=0.10)
        steady = rv(gpu=40)  # 100 > 95, but < 95 * 1.1
        assert not strict.can_admit(rv(gpu=1), steady, [task]).admitted
        assert loose.can_admit(rv(gpu=1), steady, [task]).admitted

    def test_min_allocation_used_for_boot_room(self):
        # A loading task is compressible: counted at its throttled footprint.
        task = FakeTask(rv(cpu=90), [rv(cpu=50)], minimum=rv(cpu=20))
        d = Distributor(BUDGET)
        decision = d.can_admit(rv(cpu=30), rv(cpu=30), [task])
        assert decision.admitted

    def test_multiple_tasks_summed(self):
        d = Distributor(BUDGET)
        tasks = [FakeTask(rv(gpu=30), [rv(gpu=30)]) for _ in range(2)]
        assert d.can_admit(rv(gpu=5), rv(gpu=30), tasks).admitted
        assert not d.can_admit(rv(gpu=5), rv(gpu=40), tasks).admitted

    def test_decision_is_truthy(self):
        assert AdmissionDecision(True, "ok")
        assert not AdmissionDecision(False, "no")

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Distributor(BUDGET, horizon=0)
        with pytest.raises(ValueError):
            Distributor(BUDGET, overshoot_tolerance=-0.1)


class TestRegulator:
    def test_holds_when_next_stage_does_not_fit(self):
        reg = Regulator(BUDGET)
        assert reg.should_hold_in_loading(rv(gpu=60), rv(gpu=50), 0.0)

    def test_releases_when_it_fits(self):
        reg = Regulator(BUDGET)
        assert not reg.should_hold_in_loading(rv(gpu=40), rv(gpu=50), 0.0)

    def test_extension_budget_expires(self):
        cfg = RegulatorConfig(max_extension_seconds=30)
        reg = Regulator(BUDGET, config=cfg)
        assert reg.should_hold_in_loading(rv(gpu=60), rv(gpu=50), 29.0)
        assert not reg.should_hold_in_loading(rv(gpu=60), rv(gpu=50), 30.0)

    def test_disabled_never_holds(self):
        reg = Regulator(BUDGET, config=RegulatorConfig(enabled=False))
        assert not reg.should_hold_in_loading(rv(gpu=99), rv(gpu=99), 0.0)

    def test_hold_accounting(self):
        reg = Regulator(BUDGET)
        reg.start_hold()
        reg.note_hold(5)
        reg.note_hold(5)
        assert reg.holds_started == 1
        assert reg.hold_seconds_total == 10

    def test_pick_request_prefers_short_when_tight(self):
        reg = Regulator(BUDGET)
        pending = ["long", "short"]
        idx = reg.pick_request(
            pending,
            rv(gpu=80),  # tight: 15/95 headroom
            long_term_of=lambda r: r == "long",
        )
        assert pending[idx] == "short"

    def test_pick_request_prefers_long_when_free(self):
        reg = Regulator(BUDGET)
        pending = ["short", "long"]
        idx = reg.pick_request(
            pending,
            rv(gpu=10),
            long_term_of=lambda r: r == "long",
        )
        assert pending[idx] == "long"

    def test_pick_request_empty(self):
        assert Regulator(BUDGET).pick_request([], rv()) is None

    def test_pick_request_fifo_when_disabled(self):
        reg = Regulator(BUDGET, config=RegulatorConfig(enabled=False))
        assert reg.pick_request(["a", "b"], rv(gpu=80)) == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RegulatorConfig(max_extension_seconds=-1)
        with pytest.raises(ValueError):
            RegulatorConfig(steal_fraction=0.0)
