"""SARIF 2.1.0 reporter coverage: golden-file byte stability across a
double run, and a schema-shape check.

The golden log lives at ``tests/data/lint_golden.sarif`` and is rendered
from the committed fixture tree ``tests/data/sarif_fixture/`` with
*relative* paths (the test chdirs into the fixture), so the bytes are
machine-independent.  Regenerate after intentionally changing a rule's
name/description or the reporter itself::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_lint_sarif.py
"""

import json
import os
from pathlib import Path

from repro.lint import lint_paths, render_sarif
from repro.lint.reporters import _SYNTAX_RULE_META

DATA = Path(__file__).parent / "data"
FIXTURE = DATA / "sarif_fixture"
GOLDEN = DATA / "lint_golden.sarif"


def _render_fixture(monkeypatch) -> str:
    monkeypatch.chdir(FIXTURE)
    result = lint_paths(["serve", "util"])
    return render_sarif(result)


class TestGoldenFile:
    def test_double_run_is_byte_identical(self, monkeypatch):
        first = _render_fixture(monkeypatch)
        second = _render_fixture(monkeypatch)
        assert first == second

    def test_matches_committed_golden(self, monkeypatch):
        rendered = _render_fixture(monkeypatch)
        if os.environ.get("REGEN_GOLDEN"):
            GOLDEN.write_text(rendered + "\n", encoding="utf-8")
        assert GOLDEN.is_file(), (
            f"golden file missing; regenerate per the module docstring"
        )
        assert rendered == GOLDEN.read_text(encoding="utf-8").rstrip("\n"), (
            "SARIF output drifted from tests/data/lint_golden.sarif; if the "
            "change is intentional (new rule, reworded description), "
            "regenerate the golden per the module docstring"
        )

    def test_fixture_actually_finds_something(self, monkeypatch):
        # An empty result would make the golden test vacuous.
        log = json.loads(_render_fixture(monkeypatch))
        assert log["runs"][0]["results"], "fixture produced no findings"


class TestSchemaShape:
    def test_log_shape(self, monkeypatch):
        log = json.loads(_render_fixture(monkeypatch))
        assert log["$schema"].endswith("sarif-2.1.0.json")
        assert log["version"] == "2.1.0"
        assert len(log["runs"]) == 1
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"]
        assert driver["rules"]

    def test_driver_rules_are_unique_and_complete(self, monkeypatch):
        log = json.loads(_render_fixture(monkeypatch))
        driver = log["runs"][0]["tool"]["driver"]
        ids = [r["id"] for r in driver["rules"]]
        assert len(ids) == len(set(ids))
        assert _SYNTAX_RULE_META["id"] in ids
        # Every rule entry carries name + shortDescription text.
        for rule in driver["rules"]:
            assert rule["name"]
            assert rule["shortDescription"]["text"]

    def test_every_result_references_a_declared_rule(self, monkeypatch):
        log = json.loads(_render_fixture(monkeypatch))
        run = log["runs"][0]
        declared = {r["id"] for r in run["tool"]["driver"]["rules"]}
        for result in run["results"]:
            assert result["ruleId"] in declared
            assert result["level"] == "error"
            assert result["message"]["text"]
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1
            uri = (result["locations"][0]["physicalLocation"]
                   ["artifactLocation"]["uri"])
            assert "\\" not in uri  # forward slashes, machine-independent
            assert not uri.startswith("/")
