"""Tests for the fleet/cluster layer and §IV-D profile migration."""

import numpy as np
import pytest

from repro.baselines import CoCGStrategy, VBPStrategy
from repro.cluster import ClusterScheduler, FleetExperiment, FleetNode
from repro.platform_.profile import (
    BIG_SERVER_PLATFORM,
    REFERENCE_PLATFORM,
    WEAK_GPU_PLATFORM,
)
from repro.workloads.requests import GameRequest, PoissonArrivals
from repro.games.player import PlayerModel


def make_request(spec, rid=0, script=None):
    player = PlayerModel(f"p{rid}", spec.category, seed=0)
    return GameRequest(
        spec, script or spec.scripts[0].name, player, arrival=0.0, request_id=rid
    )


class TestProfileRescaling:
    def test_structure_is_invariant(self, toy_profile):
        scaled = toy_profile.rescaled(WEAK_GPU_PLATFORM)
        assert scaled.library.n_clusters == toy_profile.library.n_clusters
        assert scaled.library.stage_types == toy_profile.library.stage_types
        assert scaled.library.loading_clusters == toy_profile.library.loading_clusters

    def test_magnitudes_scale(self, toy_profile):
        scaled = toy_profile.rescaled(WEAK_GPU_PLATFORM)
        ref_peak = toy_profile.library.max_peak()
        new_peak = scaled.library.max_peak()
        assert new_peak.gpu == pytest.approx(
            min(ref_peak.gpu * WEAK_GPU_PLATFORM.gpu_factor, 100.0), rel=1e-6
        )
        assert new_peak.cpu == pytest.approx(ref_peak.cpu, rel=1e-6)

    def test_durations_and_transitions_carry_over(self, toy_profile):
        scaled = toy_profile.rescaled(BIG_SERVER_PLATFORM)
        for t in toy_profile.library.execution_types:
            assert (
                scaled.library.stats(t).mean_duration_seconds()
                == toy_profile.library.stats(t).mean_duration_seconds()
            )
            assert scaled.library.transition_counts(
                t
            ) == toy_profile.library.transition_counts(t)

    def test_predictors_keep_accuracy_and_rebind_library(self, toy_profile):
        scaled = toy_profile.rescaled(WEAK_GPU_PLATFORM)
        for backend in toy_profile.predictors:
            assert (
                scaled.predictors[backend].accuracy_
                == toy_profile.predictors[backend].accuracy_
            )
            assert scaled.predictors[backend].library is scaled.library

    def test_judgment_works_on_scaled_centers(self, toy_profile):
        scaled = toy_profile.rescaled(WEAK_GPU_PLATFORM)
        lib = scaled.library
        (lc,) = lib.loading_clusters
        j = scaled.predictors["dtc"].judge(lib.centers[lc], None)
        from repro.core.predictor import JudgmentKind

        assert j.kind is JudgmentKind.LOADING


class TestFleetNode:
    def test_admit_and_run(self, toy_spec, toy_profile):
        node = FleetNode("n0", CoCGStrategy(), {"toygame": toy_profile})
        req = make_request(toy_spec, rid=1, script="full")
        assert node.try_admit(req, time=0, seed=1)
        assert node.n_running == 1
        for t in range(60):
            node.tick(t)
            if (t + 1) % 5 == 0:
                node.control(t + 1)
        assert node.telemetry.session_ids

    def test_completion_counted(self, toy_spec, toy_profile):
        node = FleetNode("n0", CoCGStrategy(), {"toygame": toy_profile})
        req = make_request(toy_spec, rid=2, script="full")
        node.try_admit(req, time=0, seed=1)
        t = 0
        while node.n_running and t < 1000:
            node.tick(t)
            if (t + 1) % 5 == 0:
                node.control(t + 1)
            t += 1
        assert node.completed.get("toygame", 0) == 1

    def test_platform_rescales_profiles(self, toy_profile):
        node = FleetNode(
            "weak", CoCGStrategy(), {"toygame": toy_profile},
            platform=WEAK_GPU_PLATFORM,
        )
        assert (
            node.profiles["toygame"].library.max_peak().gpu
            > toy_profile.library.max_peak().gpu
        )

    def test_sessions_generated_on_node_platform(self, toy_spec, toy_profile):
        node = FleetNode(
            "weak", CoCGStrategy(), {"toygame": toy_profile},
            platform=WEAK_GPU_PLATFORM,
        )
        req = make_request(toy_spec, rid=3, script="full")
        node.try_admit(req, time=0, seed=1)
        (session,) = node.sessions.values()
        assert session.platform is WEAK_GPU_PLATFORM


class TestClusterScheduler:
    def make_cluster(self, toy_profile, policy="first-fit", n=2):
        nodes = [
            FleetNode(f"n{i}", CoCGStrategy(), {"toygame": toy_profile})
            for i in range(n)
        ]
        return ClusterScheduler(nodes, policy=policy)

    def test_first_fit_fills_first_node(self, toy_spec, toy_profile):
        cluster = self.make_cluster(toy_profile)
        a = cluster.dispatch(make_request(toy_spec, 1, "full"), time=0, seed=1)
        b = cluster.dispatch(make_request(toy_spec, 2, "full"), time=0, seed=2)
        assert a.node_id == "n0" and b.node_id == "n0"

    def test_round_robin_spreads(self, toy_spec, toy_profile):
        cluster = self.make_cluster(toy_profile, policy="round-robin")
        a = cluster.dispatch(make_request(toy_spec, 1, "full"), time=0, seed=1)
        b = cluster.dispatch(make_request(toy_spec, 2, "full"), time=0, seed=2)
        assert {a.node_id, b.node_id} == {"n0", "n1"}

    def test_best_fit_consolidates(self, toy_spec, toy_profile):
        cluster = self.make_cluster(toy_profile, policy="best-fit")
        a = cluster.dispatch(make_request(toy_spec, 1, "full"), time=0, seed=1)
        b = cluster.dispatch(make_request(toy_spec, 2, "full"), time=0, seed=2)
        assert a.node_id == b.node_id

    def test_deferral_when_everything_full(self, toy_spec, toy_profile):
        cluster = self.make_cluster(toy_profile, n=1)
        served = 0
        for i in range(12):
            if cluster.dispatch(make_request(toy_spec, i, "full"), time=0, seed=i):
                served += 1
        assert served < 12
        assert cluster.deferred > 0

    def test_duplicate_node_ids_rejected(self, toy_profile):
        nodes = [
            FleetNode("x", CoCGStrategy(), {"toygame": toy_profile}),
            FleetNode("x", CoCGStrategy(), {"toygame": toy_profile}),
        ]
        with pytest.raises(ValueError):
            ClusterScheduler(nodes)

    def test_unknown_policy(self, toy_profile):
        node = FleetNode("n0", CoCGStrategy(), {"toygame": toy_profile})
        with pytest.raises(ValueError):
            ClusterScheduler([node], policy="magic")

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            ClusterScheduler([])


class TestFleetExperiment:
    def test_runs_and_aggregates(self, toy_spec, toy_profile):
        nodes = [
            FleetNode(f"n{i}", CoCGStrategy(), {"toygame": toy_profile}, seed=i)
            for i in range(2)
        ]
        cluster = ClusterScheduler(nodes, policy="round-robin")
        exp = FleetExperiment(
            cluster, [toy_spec], horizon=900, rate_per_minute=2.0, seed=3
        )
        result = exp.run()
        assert result.completed_runs.get("toygame", 0) >= 3
        assert result.throughput > 0
        assert 0 <= result.fraction_of_best <= 1
        assert result.mean_wait_seconds >= 0
        assert set(result.per_node_mean_gpu) == {"n0", "n1"}

    def test_deterministic(self, toy_spec, toy_profile):
        def run_once():
            nodes = [
                FleetNode(
                    "n0", CoCGStrategy(), {"toygame": toy_profile}, seed=0
                )
            ]
            cluster = ClusterScheduler(nodes)
            return FleetExperiment(
                cluster, [toy_spec], horizon=600, rate_per_minute=2.0, seed=9
            ).run()

        a, b = run_once(), run_once()
        assert a.completed_runs == b.completed_runs
        assert a.throughput == b.throughput

    def test_heterogeneous_fleet(self, toy_spec, toy_profile):
        nodes = [
            FleetNode("ref", CoCGStrategy(), {"toygame": toy_profile}),
            FleetNode(
                "weak", CoCGStrategy(), {"toygame": toy_profile},
                platform=WEAK_GPU_PLATFORM,
            ),
            FleetNode(
                "big", VBPStrategy(), {"toygame": toy_profile},
                platform=BIG_SERVER_PLATFORM,
            ),
        ]
        cluster = ClusterScheduler(nodes, policy="round-robin")
        result = FleetExperiment(
            cluster, [toy_spec], horizon=900, rate_per_minute=3.0, seed=4
        ).run()
        assert sum(result.completed_runs.values()) >= 3

    def test_invalid_params(self, toy_spec, toy_profile):
        node = FleetNode("n0", CoCGStrategy(), {"toygame": toy_profile})
        cluster = ClusterScheduler([node])
        with pytest.raises(ValueError):
            FleetExperiment(cluster, [toy_spec], horizon=0)
