"""Elastic-capacity chaos benchmark — reclamation storm under a live
provisioner.

Drives a two-node fleet with a :class:`repro.cluster.Provisioner` (one
warm standby, seeded provision latencies) through a reclamation storm:
spot reclaims on both seed nodes, a provision-fail window, and a
warm-pool exhaustion.  Asserts the robustness contract end to end:

* the run replays byte-identically (telemetry digest, which folds in the
  full lifecycle history, matches across two runs);
* the session-accountability ledger balances to zero — every admitted
  session is completed, running, requeued, dead-lettered with an
  explicit reason, or a de-duplicated requeue;
* replacement capacity actually lands (warm promotion + cold boots).

The headline numbers land in ``BENCH_chaos.json`` (uploaded by the CI
chaos job): reclaim-to-drain latency per reclaimed node and the
requeued-vs-dead-lettered split of displaced sessions.
"""

import json
from pathlib import Path

from benchmarks.conftest import HARNESS_SEED, print_block
from repro.analysis.report import format_table
from repro.baselines import CoCGStrategy
from repro.cluster import (
    ClusterScheduler,
    FleetExperiment,
    FleetNode,
    Provisioner,
    ProvisionerConfig,
)
from repro.faults import reclaim_storm_plan

HORIZON = 1800
RATE = 2.0
GAMES = ("genshin", "contra")
NODES = ("node-0", "node-1")


def _run_storm(profiles, catalog):
    game_profiles = {g: profiles[g] for g in GAMES}
    nodes = [
        FleetNode(
            name, CoCGStrategy(), game_profiles, seed=HARNESS_SEED + i
        )
        for i, name in enumerate(NODES)
    ]
    cluster = ClusterScheduler(nodes, policy="round-robin")
    provisioner = Provisioner(
        cluster,
        lambda node_id: FleetNode(
            node_id, CoCGStrategy(), game_profiles, seed=HARNESS_SEED
        ),
        config=ProvisionerConfig(warm_pool_size=1, latency_base=20.0),
        seed=HARNESS_SEED,
    )
    result = FleetExperiment(
        cluster,
        [catalog[g] for g in GAMES],
        horizon=HORIZON,
        rate_per_minute=RATE,
        seed=HARNESS_SEED,
        fault_plan=reclaim_storm_plan(HORIZON, seed=HARNESS_SEED, nodes=NODES),
        provisioner=provisioner,
    ).run()
    return cluster, provisioner, result


def _drain_latencies(provisioner):
    """Per-node seconds from reclaim notice to the drain completing."""
    notice, done = {}, {}
    for event in provisioner.events:
        if event.state == "reclaim-notice":
            notice.setdefault(event.node, event.time)
        elif event.state == "reclaimed":
            done.setdefault(event.node, event.time)
    return {
        node: round(done[node] - notice[node], 3)
        for node in sorted(notice)
        if node in done
    }


def test_reclamation_storm_provisioning(profiles, catalog):
    cluster, provisioner, result = _run_storm(profiles, catalog)
    _, _, replay = _run_storm(profiles, catalog)

    # The whole capacity history is part of the deterministic contract.
    assert result.telemetry_digest == replay.telemetry_digest, (
        "reclamation storm does not replay byte-identically"
    )
    assert result.session_accounting == replay.session_accounting

    # Graceful drain: zero unaccounted sessions, explicit reasons only.
    assert result.unaccounted_sessions == 0, result.session_accounting
    reclaim_dead = [d for d in result.dead_letters if d.reason == "reclaim"]
    assert all(d.fault_index >= 0 for d in reclaim_dead)

    # Both seed nodes were reclaimed and replacement capacity landed.
    assert cluster.reclaimed_nodes == len(NODES)
    assert provisioner.counts["warm_promoted"] >= 1
    assert cluster.up_count >= 1

    latencies = _drain_latencies(provisioner)
    assert set(latencies) == set(NODES)

    acct = result.session_accounting
    stats = {
        "digest": result.telemetry_digest,
        "horizon_seconds": HORIZON,
        "reclaim_to_drain_seconds": latencies,
        "sessions": {
            "dispatched": acct["dispatched"],
            "completed": acct["completed"],
            "requeued": acct["requeued"],
            "requeue_dupes": acct["requeue_dupes"],
            "dead_lettered_reclaim": len(reclaim_dead),
            "dead_lettered_total": len(result.dead_letters),
            "unaccounted": result.unaccounted_sessions,
        },
        "provisioner": provisioner.stats(),
    }
    Path("BENCH_chaos.json").write_text(
        json.dumps(stats, indent=2, sort_keys=True) + "\n"
    )

    rows = [
        [node, latencies[node]] for node in sorted(latencies)
    ]
    print_block(
        format_table(
            ["reclaimed node", "notice-to-drain s"],
            rows,
            title=f"Reclamation storm over {len(NODES)} nodes "
                  f"({RATE}/min arrivals, {HORIZON}s, warm pool 1)",
        )
    )
    print(f"sessions dispatched:   {acct['dispatched']}")
    print(f"sessions requeued:     {acct['requeued']} "
          f"(+{acct['requeue_dupes']} de-duplicated)")
    print(f"dead-lettered reclaim: {len(reclaim_dead)} "
          f"of {len(result.dead_letters)} total")
    print(f"provision requests:    {provisioner.counts['requested']} "
          f"({provisioner.counts['retried']} retried)")
    print(f"digest: {result.telemetry_digest}")
