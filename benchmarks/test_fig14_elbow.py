"""Fig 14 — clustering SSE versus K, and the chosen cluster counts.

"The SSEs remain few changes when K > 5" — each game's SSE-vs-K curve
flattens at its characteristic cluster count, which the paper reads off
by inspection: Contra 2, CSGO 4, Genshin 4, DOTA2 5, Devil May Cry 6.
We print the normalised curves and compare the automatic elbow criterion
against those published choices.
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis.elbow import elbow_analysis
from repro.analysis.report import format_series, format_table
from repro.core.frames import frame_matrix
from repro.mlkit.kmeans import sse_curve

PAPER_K = {"contra": 2, "csgo": 4, "genshin": 4, "dota2": 5, "devil_may_cry": 6}


def test_fig14_sse_elbows(catalog, corpora, benchmark):
    rows = []
    curves = []
    matches = 0
    for game, paper_k in PAPER_K.items():
        analysis = elbow_analysis(catalog[game], corpora[game], seed=0)
        rows.append([game, paper_k, analysis.chosen_k,
                     "yes" if analysis.chosen_k == paper_k else "no"])
        curves.append(
            format_series(
                f"{game} SSE/SSE(1) for K=1..10",
                analysis.normalized_sses,
                per_line=10,
                fmt="{:7.3f}",
            )
        )
        matches += analysis.chosen_k == paper_k
    print_block(
        format_table(
            ["game", "paper K", "auto elbow K", "match"],
            rows,
            title="Fig 14: chosen cluster counts",
        )
        + "\n\n"
        + "\n".join(curves)
    )
    # The automatic criterion must recover the published K for at least
    # four of the five games on this corpus (K selection on overlapping
    # telemetry is inherently fuzzy; EXPERIMENTS.md discusses this).
    assert matches >= 4

    # Every curve must actually flatten after the published K: the drops
    # beyond it are small relative to the total span.
    for game, paper_k in PAPER_K.items():
        analysis = elbow_analysis(catalog[game], corpora[game], seed=0)
        s = np.asarray(analysis.sses)
        span = s[0] - s[-1]
        idx = analysis.k_values.index(paper_k)
        residual = (s[idx] - s[-1]) / span
        # Contra keeps a larger residual: its traces are short and
        # loading-dense, so loading/run boundary mixture frames form
        # genuine (if uninteresting) sub-structure.  The paper chose its
        # K=2 from game knowledge, not from the curve alone.
        assert residual < 0.25, (game, residual)

    X = frame_matrix([b.series for b in corpora["contra"]])
    benchmark(lambda: sse_curve(X, range(1, 11), seed=0, n_init=4))
