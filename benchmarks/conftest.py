"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures, printing
the same rows/series (absolute numbers come from our simulator substrate;
the *shapes* are what EXPERIMENTS.md compares).  Offline game profiles
are expensive, so they are built once per session here.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import GameProfile
from repro.games.catalog import build_catalog
from repro.games.tracegen import generate_corpus

#: One corpus/profile seed for the whole harness → reproducible output.
HARNESS_SEED = 3

GAMES = ("dota2", "csgo", "genshin", "devil_may_cry", "contra")


@pytest.fixture(scope="session")
def catalog():
    return build_catalog()


@pytest.fixture(scope="session")
def corpora(catalog):
    """Profiling corpora per game (shared by Figs 5/6/14/15, Table I)."""
    return {
        name: generate_corpus(
            catalog[name], n_players=6, sessions_per_player=5, seed=HARNESS_SEED
        )
        for name in GAMES
    }


@pytest.fixture(scope="session")
def profiles(catalog, corpora):
    """Full offline profiles (all three predictor backends) per game."""
    return {
        name: GameProfile.build(
            catalog[name], corpus=corpora[name], seed=HARNESS_SEED
        )
        for name in GAMES
    }


def print_block(text: str) -> None:
    """Print a bench's reproduction output, framed for easy grepping."""
    print()
    print(text)
    print()
