"""Serving-scale benchmark: micro-batched + cached vs naive admission.

Drives ≥100k open-loop requests through the *real* serve stack —
:class:`~repro.serve.gateway.AdmissionGateway`,
:class:`~repro.serve.batching.MicroBatcher`,
:class:`~repro.serve.rollout_cache.RolloutCache`,
:class:`~repro.core.distributor.Distributor` — over synthetic nodes
whose running tasks count every predictor rollout they are asked for.
Real game sessions would spend the benchmark's budget simulating frames;
the synthetic tasks keep the admission arithmetic (and its cost
structure) while making the rollout count the only moving part.

Claims checked (the ISSUE's acceptance bar):

* the batched + cached gateway performs **≥ 5× fewer** predictor
  rollout evaluations than naive per-request admission;
* admission outcomes are **identical** — the gateway telemetry digests
  of both modes match event for event;
* replays are digest-stable — the batched run repeated from the same
  seed reproduces its digest byte for byte.

The decision-count/caching stats land in ``BENCH_serve.json`` (the CI
``serve-smoke`` artifact).
"""

from __future__ import annotations

import json
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.cluster.fleet import ClusterScheduler, NodeHealth
from repro.core.distributor import Distributor
from repro.platform_.resources import N_DIMS, ResourceVector
from repro.serve import AdmissionGateway, GatewayConfig, RolloutCache
from repro.serve.loadgen import OpenLoopLoadGen


def uniform(value):
    """A ResourceVector with every dimension at ``value``."""
    return ResourceVector.from_array([value] * N_DIMS)

SEED = 17
HORIZON = 2000          # simulated seconds
RATE_PER_SECOND = 55.0  # arrivals — ~110k requests over the horizon
PUMP_INTERVAL = 5
N_NODES = 3
DIST_HORIZON = 3
GAMES = ("contra", "dota2", "genshin", "csgo")
MIN_REQUESTS = 100_000
MIN_RATIO = 5.0


class SyntheticTask:
    """A running task whose rollout cost is observable.

    Implements the distributor's ``RunningTaskView`` and the epoch-keyed
    cache discipline of ``SessionControl``: every uncached
    ``predicted_peaks`` call counts one rollout evaluation.
    """

    def __init__(self, session_id, alloc, peak, end_time, counter, cache):
        self.session_id = session_id
        self.epoch = 0
        self.end_time = end_time
        self._alloc = alloc
        self._peak = peak
        self._counter = counter
        self._cache = cache

    @property
    def current_allocation(self):
        return self._alloc

    def predicted_peaks(self, horizon):
        if self._cache is not None:
            cached = self._cache.get(self.session_id, self.epoch, horizon)
            if cached is not None:
                return cached
        self._counter.rollouts += 1
        peaks = [self._peak] * horizon
        if self._cache is not None:
            self._cache.put(self.session_id, self.epoch, horizon, peaks)
        return peaks


class SyntheticScheduler:
    """The duck-typed CoCG surface the micro-batcher probes for."""

    def __init__(self, capacity, cache):
        self.distributor = Distributor(capacity, horizon=DIST_HORIZON)
        self.rollout_cache = cache
        self.tasks = []  # lint: disable=CG009 - bounded by admission capacity

    def task_views(self):
        return list(self.tasks)

    def admission_terms(self, profile):
        return profile.entry_min, profile.steady


class SyntheticNode:
    """Duck-types the ``FleetNode`` surface cluster dispatch uses."""

    def __init__(self, node_id, profiles, counter, cache):
        self.node_id = node_id
        self.health = NodeHealth.UP
        self.profiles = profiles
        self._counter = counter
        self.strategy = SimpleNamespace(
            scheduler=SyntheticScheduler(uniform(95.0), cache)
        )

    def try_admit(self, request, *, time, seed, incarnation=0):
        sched = self.strategy.scheduler
        profile = self.profiles.get(request.spec.name)
        if profile is None:
            return False
        decision = sched.distributor.can_admit(
            profile.entry_min, profile.steady, sched.task_views()
        )
        if not decision.admitted:
            return False
        duration = 45.0 + (request.request_id % 60)
        sid = f"{request.spec.name}-r{request.request_id}.{incarnation}@{self.node_id}"
        sched.tasks.append(
            SyntheticTask(
                sid, profile.steady, profile.steady, time + duration,
                self._counter, sched.rollout_cache,
            )
        )
        return True

    def headroom(self):
        return 1.0 - min(1.0, len(self.strategy.scheduler.tasks) / 4.0)

    def advance(self, time):
        """Expire finished tasks and bump survivors' epochs (the
        stand-in for a control tick's stage transitions)."""
        sched = self.strategy.scheduler
        cache = sched.rollout_cache
        keep = []
        for task in sched.tasks:
            if task.end_time <= time:
                if cache is not None:
                    cache.invalidate(task.session_id)
                continue
            task.epoch += 1
            if cache is not None:
                cache.invalidate(task.session_id)
            keep.append(task)
        sched.tasks = keep


def synthetic_profiles(specs):
    """Per-game admission terms: heavy enough that nodes saturate."""
    out = {}
    for k, spec in enumerate(specs):
        steady = 24.0 + 4.0 * (k % 3)
        out[spec.name] = SimpleNamespace(
            entry_min=uniform(6.0),
            steady=uniform(steady),
        )
    return out


@pytest.fixture(scope="module")
def loadgen():
    from repro.games.catalog import build_catalog

    catalog = build_catalog()
    specs = [catalog[name] for name in GAMES]
    gen = OpenLoopLoadGen(
        specs,
        rate_per_second=RATE_PER_SECOND,
        seed=SEED,
        horizon=float(HORIZON),
        player_pool=16,
    )
    assert len(gen) >= MIN_REQUESTS
    return gen


def drive(loadgen, *, batched, obs=None, horizon=HORIZON):
    """One full gateway run; returns (gateway, counter, cache).

    ``obs`` threads an :class:`repro.obs.Observer` through the gateway
    (the overhead benchmark drives the same run observed and
    unobserved); ``horizon`` lets callers shorten the run.
    """
    from repro.games.catalog import build_catalog

    catalog = build_catalog()
    specs = [catalog[name] for name in GAMES]
    profiles = synthetic_profiles(specs)
    counter = SimpleNamespace(rollouts=0)
    cache = RolloutCache(max_entries=4096) if batched else None
    nodes = [
        SyntheticNode(f"node-{i}", profiles, counter, cache)
        for i in range(N_NODES)
    ]
    cluster = ClusterScheduler(nodes, policy="round-robin")
    gateway = AdmissionGateway(
        cluster,
        config=GatewayConfig(
            queue_capacity=48,
            rate_per_second=4.0,
            burst=24,
            max_queue_seconds=120.0,
            micro_batching=batched,
        ),
        obs=obs,
    )
    cluster.attach_gateway(gateway)

    def seed_for(request, incarnation):
        return 0  # synthetic tasks draw nothing

    prev = 0.0
    for t in range(0, horizon, PUMP_INTERVAL):
        now = float(t)
        for node in nodes:
            node.advance(now)
        for request in loadgen.due(prev, now + 1e-9):
            cluster.submit(request, time=now)
        prev = now + 1e-9
        gateway.pump(now, seed_for)
    return gateway, counter, cache


def test_serve_throughput(loadgen):
    naive_gw, naive_counter, _ = drive(loadgen, batched=False)
    batched_gw, batched_counter, cache = drive(loadgen, batched=True)
    replay_gw, replay_counter, _ = drive(loadgen, batched=True)

    # Identical admission outcomes: the gateway event streams (queued /
    # shed / admitted@node / dead-lettered, in order) must match.
    assert (
        naive_gw.telemetry.digest() == batched_gw.telemetry.digest()
    ), "batched dispatch changed admission outcomes"
    assert naive_gw.stats() == batched_gw.stats()

    # Digest-stable replay: same seed, same digest, same work.
    assert batched_gw.telemetry.digest() == replay_gw.telemetry.digest()
    assert batched_counter.rollouts == replay_counter.rollouts

    ratio = naive_counter.rollouts / max(1, batched_counter.rollouts)
    stats = {
        "requests": len(loadgen),
        "rollouts_naive": naive_counter.rollouts,
        "rollouts_batched": batched_counter.rollouts,
        "rollout_ratio": round(ratio, 2),
        "gateway": batched_gw.stats(),
        "batching": batched_gw.batcher.stats(),
        "rollout_cache": cache.stats(),
        "digest": batched_gw.telemetry.digest(),
        "slo": {
            s.category: {
                "count": s.count,
                "outcomes": s.outcomes,
                "wait_p50": s.wait_p50,
                "wait_p90": s.wait_p90,
                "wait_p99": s.wait_p99,
            }
            for s in batched_gw.slo.summaries()
        },
    }
    Path("BENCH_serve.json").write_text(
        json.dumps(stats, indent=2, sort_keys=True) + "\n"
    )

    print(f"\nrequests driven:     {stats['requests']:,}")
    print(f"rollouts (naive):    {naive_counter.rollouts:,}")
    print(f"rollouts (batched):  {batched_counter.rollouts:,}")
    print(f"ratio:               {ratio:.1f}x")
    print(f"cache hit rate:      {cache.hit_rate:.0%}")

    assert stats["requests"] >= MIN_REQUESTS
    assert ratio >= MIN_RATIO, (
        f"expected >= {MIN_RATIO}x fewer rollouts, got {ratio:.2f}x "
        f"({naive_counter.rollouts} vs {batched_counter.rollouts})"
    )
