"""Fleet-scale ablation — §IV-D: "when considering scales for larger
servers … and also more games that are co-located, our work is more
expansive than the previous work."

Dispatches the same Poisson request stream over a three-node fleet under
each dispatch policy (first-fit / best-fit / round-robin) with CoCG on
every node, and over a heterogeneous fleet (reference + weak-GPU +
big-server platforms) using §IV-D profile rescaling.  Shows that the
single-profiling-pass claim holds at fleet scale: every node schedules
correctly from the same offline artifact.
"""

import numpy as np

from benchmarks.conftest import HARNESS_SEED, print_block
from repro.analysis.report import format_table
from repro.baselines import CoCGStrategy
from repro.cluster import ClusterScheduler, FleetExperiment, FleetNode
from repro.platform_.profile import (
    BIG_SERVER_PLATFORM,
    REFERENCE_PLATFORM,
    WEAK_GPU_PLATFORM,
)

HORIZON = 2400
RATE = 2.0
GAMES = ("genshin", "contra", "devil_may_cry")


def _run(profiles, catalog, policy, platforms):
    nodes = [
        FleetNode(
            f"n{i}-{platforms[i].name}",
            CoCGStrategy(),
            {g: profiles[g] for g in GAMES},
            platform=platforms[i],
            seed=HARNESS_SEED + i,
        )
        for i in range(len(platforms))
    ]
    cluster = ClusterScheduler(nodes, policy=policy)
    result = FleetExperiment(
        cluster,
        [catalog[g] for g in GAMES],
        horizon=HORIZON,
        rate_per_minute=RATE,
        seed=HARNESS_SEED,
    ).run()
    return cluster, result


def test_fleet_policies_and_heterogeneity(profiles, catalog, benchmark):
    homo = [REFERENCE_PLATFORM] * 3
    hetero = [REFERENCE_PLATFORM, WEAK_GPU_PLATFORM, BIG_SERVER_PLATFORM]

    rows = []
    results = {}
    for label, policy, platforms in [
        ("first-fit", "first-fit", homo),
        ("best-fit", "best-fit", homo),
        ("round-robin", "round-robin", homo),
        ("hetero round-robin", "round-robin", hetero),
    ]:
        cluster, result = _run(profiles, catalog, policy, platforms)
        gpu_means = list(result.per_node_mean_gpu.values())
        rows.append([
            label,
            sum(result.completed_runs.values()),
            result.throughput,
            result.fraction_of_best * 100,
            result.mean_wait_seconds,
            float(np.std(gpu_means)),
        ])
        results[label] = (cluster, result, gpu_means)
    print_block(
        format_table(
            ["fleet", "runs", "T (Eq 2)", "% of best FPS", "mean wait s",
             "GPU-load stddev"],
            rows,
            title="Fleet dispatch policies over 3 CoCG nodes "
                  f"({RATE}/min arrivals, {HORIZON}s)",
        )
    )

    # All policies serve comparable load at healthy QoS.
    for label, (cluster, result, gpu_means) in results.items():
        assert sum(result.completed_runs.values()) >= 10, label
        assert result.fraction_of_best > 0.7, label

    # Under sustained load every policy serves a similar total (the
    # fleet is the bottleneck, not the dispatcher); consolidation-vs-
    # spread differences only show at light load and are covered by the
    # cluster unit tests.
    totals = [r.throughput for _c, r, _g in results.values()]
    assert max(totals) / min(totals) < 1.2

    # The heterogeneous fleet works from the same single profiling pass
    # (§IV-D) — every node completed work.
    _, hetero_result, _ = results["hetero round-robin"]
    for node_id, completed in hetero_result.per_node_completed.items():
        assert sum(completed.values()) >= 1, node_id

    def small_fleet():
        return _run(profiles, catalog, "first-fit", homo[:2])

    benchmark.pedantic(small_fleet, rounds=3, iterations=1)
