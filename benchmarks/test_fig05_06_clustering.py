"""Figs 5 & 6 — stage types of CSGO and Devil May Cry by clustering.

The paper clusters each game's 5-second frames (Fig 5a/6a: raw resource
scatter; Fig 5b/6b: K-means result) and derives the stage types as
cluster combinations.  We regenerate both panels: the fitted centroids
and the discovered stage-type inventory per game.
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis.report import format_table
from repro.core.frames import frame_matrix
from repro.mlkit.kmeans import KMeans


def _report(game, profile):
    lib = profile.library
    center_rows = [
        [i, c[0], c[1], c[2], c[3], "loading" if i in lib.loading_clusters else ""]
        for i, c in enumerate(lib.centers)
    ]
    type_rows = [
        [
            repr(t),
            "loading" if lib.stats(t).is_loading else "execution",
            lib.stats(t).occurrences,
            lib.stats(t).mean_duration_seconds(),
            float(lib.stats(t).peak[0]),
            float(lib.stats(t).peak[1]),
        ]
        for t in lib.stage_types
    ]
    return (
        format_table(
            ["cluster", "cpu", "gpu", "gpu_mem", "ram", "role"],
            center_rows,
            title=f"{game}: fitted frame-cluster centroids (K={lib.n_clusters})",
        )
        + "\n\n"
        + format_table(
            ["type", "kind", "n", "dur (s)", "peak cpu", "peak gpu"],
            type_rows,
            title=f"{game}: discovered stage types (cluster combinations)",
        )
    )


def test_fig05_csgo_stage_types(profiles, benchmark, corpora):
    profile = profiles["csgo"]
    lib = profile.library
    print_block(_report("CSGO (Fig 5)", profile))

    assert lib.n_clusters == 4
    # The match is a two-cluster stage type (move + firefight).
    assert any(len(t) == 2 for t in lib.execution_types)
    # Types stay within the paper's 2N bound (and well under 2^N).
    assert len(lib.stage_types) <= 2 * lib.n_clusters

    X = frame_matrix([b.series for b in corpora["csgo"]])
    benchmark(lambda: KMeans(4, seed=0).fit(X))


def test_fig06_dmc_stage_types(profiles, benchmark, corpora):
    profile = profiles["devil_may_cry"]
    lib = profile.library
    print_block(_report("Devil May Cry (Fig 6)", profile))

    assert lib.n_clusters == 6
    # Single-cluster stages dominate a console campaign.
    assert sum(len(t) == 1 for t in lib.execution_types) >= 4
    assert len(lib.stage_types) <= 2 * lib.n_clusters

    X = frame_matrix([b.series for b in corpora["devil_may_cry"]])
    benchmark(lambda: KMeans(6, seed=0).fit(X))
