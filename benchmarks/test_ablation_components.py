"""Component ablations — what each CoCG design choice buys.

DESIGN.md §5 calls out the choices worth ablating; this bench runs the
Fig-9 pair (Genshin + DOTA2, where loading-time stealing is active)
with individual components disabled:

* **full** — the complete system;
* **no-regulator** — loading-time stealing and length-aware request
  picking off (§IV-C2);
* **no-redundancy** — the Eq-1 callback margin off (§IV-B2);
* **slow-detector** — 10 s detection interval instead of 5 s;
* **reactive** — no prediction at all (the paper's "improved version",
  included as the floor).
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis.report import format_table
from repro.baselines import CoCGStrategy, ReactiveStrategy
from repro.core.regulator import RegulatorConfig
from repro.core.scheduler import CoCGConfig
from repro.workloads.experiment import ColocationExperiment

HORIZON = 5400
PAIR = ("genshin", "dota2")  # the Fig-9 pair, where time stealing is active


def _variants():
    return [
        ("full", CoCGStrategy()),
        (
            "no-regulator",
            CoCGStrategy(config=CoCGConfig(regulator=RegulatorConfig(enabled=False))),
        ),
        ("no-redundancy", CoCGStrategy(config=CoCGConfig(use_redundancy=False))),
        ("slow-detector", CoCGStrategy(config=CoCGConfig(detect_interval=10))),
        ("reactive", ReactiveStrategy()),
    ]


def test_component_ablations(profiles, benchmark):
    pair = {g: profiles[g] for g in PAIR}
    results = {}
    holds = {}
    for label, strat in _variants():
        results[label] = ColocationExperiment(
            pair, strat, horizon=HORIZON, seed=42
        ).run()
        if hasattr(strat, "scheduler") and strat.scheduler is not None:
            holds[label] = strat.scheduler.regulator.holds_started
    # Shared-resource interference substrate (GAugur/Bubble-Up style):
    # same system, contentious hardware.
    from repro.platform_.interference import InterferenceModel

    interfered = CoCGStrategy()
    results["full+interference"] = ColocationExperiment(
        pair, interfered, horizon=HORIZON, seed=42,
        interference=InterferenceModel(intensity=0.08),
    ).run()
    holds["full+interference"] = interfered.scheduler.regulator.holds_started

    rows = []
    for label, r in results.items():
        fob = np.nanmean(list(r.fraction_of_best.values()))
        rows.append([
            label,
            r.throughput,
            r.completed_runs[PAIR[0]],
            r.completed_runs[PAIR[1]],
            fob * 100,
            r.colocated_seconds,
            holds.get(label, "-"),
        ])
    print_block(
        format_table(
            ["variant", "T (Eq 2)", f"runs {PAIR[0]}", f"runs {PAIR[1]}",
             "% of best FPS", "coloc s", "holds"],
            rows,
            title="Ablations on Genshin + DOTA2 (the Fig-9 pair)",
        )
    )

    full = results["full"]
    # The full system beats the prediction-free floor clearly.
    assert full.throughput > 1.2 * results["reactive"].throughput

    # Every CoCG variant still co-locates (prediction is the key enabler;
    # the other components refine QoS/efficiency).
    for label in ("full", "no-regulator", "no-redundancy", "slow-detector"):
        assert results[label].colocated_seconds > 1000, label

    # The full system's QoS is at least as good as the slow detector's
    # (a 10 s interval doubles every transition's starvation window).
    fob_full = np.nanmean(list(full.fraction_of_best.values()))
    fob_slow = np.nanmean(list(results["slow-detector"].fraction_of_best.values()))
    assert fob_full >= fob_slow - 0.03

    # Interference costs some QoS but the system keeps working.
    fob_interf = np.nanmean(
        list(results["full+interference"].fraction_of_best.values())
    )
    assert fob_interf <= fob_full + 0.01
    assert results["full+interference"].throughput > 0.8 * full.throughput

    # Cap discipline holds in every variant.
    for label, r in results.items():
        assert r.over_cap_seconds == 0, label

    def short_ablation():
        return ColocationExperiment(
            pair,
            CoCGStrategy(config=CoCGConfig(use_redundancy=False)),
            horizon=300,
            seed=2,
        ).run()

    benchmark.pedantic(short_ablation, rounds=3, iterations=1)
