"""§IV-D ablation — platform migration invariance.

"No matter what platform the game is migrated to, the number of stages
and the logical relationship between the stages will not change …  The
only thing that will change is the amount of resources consumed."

We profile the same game on three platforms (the reference testbed, a
weak-GPU host, a big server) and verify: same cluster count, same stage
inventory size, same transition structure — only the demand magnitudes
scale.
"""

import numpy as np

from benchmarks.conftest import HARNESS_SEED, print_block
from repro.analysis.report import format_table
from repro.core.pipeline import GameProfile
from repro.games.tracegen import generate_corpus
from repro.platform_.profile import (
    BIG_SERVER_PLATFORM,
    REFERENCE_PLATFORM,
    WEAK_GPU_PLATFORM,
)

PLATFORMS = [REFERENCE_PLATFORM, WEAK_GPU_PLATFORM, BIG_SERVER_PLATFORM]


def test_platform_invariance(catalog, benchmark):
    spec = catalog["devil_may_cry"]  # the most stage-rich game
    libraries = {}
    for platform in PLATFORMS:
        corpus = generate_corpus(
            spec, n_players=4, sessions_per_player=3, seed=HARNESS_SEED,
            platform=platform,
        )
        libraries[platform.name] = GameProfile.build(
            spec, corpus=corpus, backends=("dtc",)
        ).library

    rows = []
    for name, lib in libraries.items():
        rows.append([
            name,
            lib.n_clusters,
            len(lib.stage_types),
            len(lib.execution_types),
            float(lib.max_peak().cpu),
            float(lib.max_peak().gpu),
        ])
    print_block(
        format_table(
            ["platform", "K", "stage types", "exec types", "peak cpu", "peak gpu"],
            rows,
            title="§IV-D: stage structure across platforms (Devil May Cry)",
        )
    )

    ref = libraries[REFERENCE_PLATFORM.name]
    for platform in PLATFORMS[1:]:
        lib = libraries[platform.name]
        # Invariant: cluster count and stage inventory size.
        assert lib.n_clusters == ref.n_clusters
        assert len(lib.stage_types) == len(ref.stage_types)
        assert len(lib.execution_types) == len(ref.execution_types)
        # Invariant: the transition structure has the same richness
        # (same number of observed execution-to-execution edges).
        ref_edges = sum(
            len(ref.transition_counts(t)) for t in ref.execution_types
        )
        lib_edges = sum(
            len(lib.transition_counts(t)) for t in lib.execution_types
        )
        assert lib_edges == ref_edges

    # Variant: only the magnitudes move, in the direction of the factors.
    assert (
        libraries[WEAK_GPU_PLATFORM.name].max_peak().gpu
        > ref.max_peak().gpu
    )
    assert (
        libraries[BIG_SERVER_PLATFORM.name].max_peak().cpu
        < ref.max_peak().cpu
    )

    corpus = generate_corpus(
        spec, n_players=2, sessions_per_player=2, seed=0,
        platform=WEAK_GPU_PLATFORM,
    )
    benchmark(
        lambda: GameProfile.build(spec, corpus=corpus, backends=("dtc",))
    )
