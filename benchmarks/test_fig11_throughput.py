"""Fig 11 — two-hour co-location throughput across strategies.

The paper runs three game pairs for two hours each under VBP, GAugur and
CoCG, counting completed runs and computing the Eq-2 throughput
``T = Σ N_i · S_i``.  The published regimes:

* **DOTA2 + Devil May Cry** — peak sums far exceed the budget: only CoCG
  co-locates them, "other solutions can only be executed individually";
* **CSGO + Genshin** — long game + short game: CoCG inserts Genshin runs
  between CSGO's peaks, "a significant increase in the number of runs of
  Genshin Impact";
* **Genshin + Contra** — light pair: "all three schemes have good
  performance";
* overall, CoCG's throughput is 23.7 % above the others.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_block
from repro.analysis.report import format_table
from repro.baselines import CoCGStrategy, GAugurStrategy, ReactiveStrategy, VBPStrategy
from repro.workloads.experiment import ColocationExperiment

HORIZON = 7200  # the paper's two hours
PAIRS = [
    ("dota2", "devil_may_cry"),
    ("csgo", "genshin"),
    ("genshin", "contra"),
]


def _strategies():
    return [CoCGStrategy(), ReactiveStrategy(), GAugurStrategy(), VBPStrategy()]


@pytest.fixture(scope="module")
def fig11_results(profiles):
    results = {}
    for a, b in PAIRS:
        pair_profiles = {a: profiles[a], b: profiles[b]}
        for strat in _strategies():
            r = ColocationExperiment(
                pair_profiles, strat, horizon=HORIZON, seed=42
            ).run()
            results[(a, b, r.strategy)] = r
    return results


def test_fig11_throughput_table(fig11_results, profiles, benchmark):
    rows = []
    totals = {}
    for a, b in PAIRS:
        for strat in ("cocg", "reactive", "gaugur", "vbp"):
            r = fig11_results[(a, b, strat)]
            rows.append([
                f"{a}+{b}", strat, r.completed_runs[a], r.completed_runs[b],
                r.throughput, r.colocated_seconds,
            ])
            totals[strat] = totals.get(strat, 0.0) + r.throughput
    improvement_static = totals["cocg"] / max(totals["gaugur"], totals["vbp"]) - 1
    improvement_reactive = totals["cocg"] / totals["reactive"] - 1
    summary = format_table(
        ["strategy", "total T (game-s)"],
        [[k, v] for k, v in sorted(totals.items(), key=lambda x: -x[1])],
        title="Eq-2 throughput totals over the three pairs",
    )
    print_block(
        format_table(
            ["pair", "strategy", "runs A", "runs B", "T (Eq 2)", "coloc s"],
            rows,
            title="Fig 11: 2-hour co-location throughput",
        )
        + "\n\n"
        + summary
        + f"\n\nCoCG vs best static baseline: {improvement_static:+.1%}"
        + f"\nCoCG vs reactive (improved):  {improvement_reactive:+.1%}"
        + "\n(paper: +23.7 % overall)"
    )

    # Regime 1: only CoCG co-locates DOTA2 + DMC; the static baselines
    # "can only be executed individually" — they alternate the two games
    # with zero co-located time.
    hard = [(s, fig11_results[("dota2", "devil_may_cry", s)]) for s in
            ("gaugur", "vbp")]
    for s, r in hard:
        assert r.colocated_seconds == 0, s
    cocg_hard = fig11_results[("dota2", "devil_may_cry", "cocg")]
    assert cocg_hard.colocated_seconds > 3600
    assert cocg_hard.completed_runs["devil_may_cry"] >= 10
    assert cocg_hard.throughput > 1.4 * max(
        fig11_results[("dota2", "devil_may_cry", s)].throughput
        for s in ("gaugur", "vbp")
    )

    # Regime 2: CoCG inserts many Genshin runs next to CSGO ("a
    # significant increase in the number of runs of Genshin Impact").
    cocg_ins = fig11_results[("csgo", "genshin", "cocg")]
    static_ins = max(
        fig11_results[("csgo", "genshin", s)].completed_runs["genshin"]
        for s in ("gaugur", "vbp")
    )
    assert cocg_ins.completed_runs["genshin"] >= static_ins + 8
    for s in ("gaugur", "vbp"):
        assert fig11_results[("csgo", "genshin", s)].colocated_seconds == 0, s

    # Regime 3: the light pair is close across strategies (within 15 %).
    light = [fig11_results[("genshin", "contra", s)].throughput
             for s in ("cocg", "gaugur", "vbp")]
    assert max(light) / min(light) < 1.15

    # Overall: CoCG improves over every alternative — roughly the
    # paper's +23.7 % against the static schemes, and a smaller but real
    # margin over the stage-aware reactive scheme.
    assert improvement_static > 0.15
    assert improvement_reactive > 0.04

    # Cap discipline throughout.
    for r in fig11_results.values():
        assert r.over_cap_seconds == 0

    # Timed portion: one short co-location slice.
    pair_profiles = {"genshin": profiles["genshin"], "contra": profiles["contra"]}

    def short_run():
        return ColocationExperiment(
            pair_profiles, CoCGStrategy(), horizon=300, seed=1
        ).run()

    benchmark.pedantic(short_run, rounds=3, iterations=1)


def test_fig11_qos_stays_acceptable(fig11_results, benchmark):
    """§IV-D: co-location under CoCG keeps degradation tolerable."""
    for a, b in PAIRS:
        r = fig11_results[(a, b, "cocg")]
        for game, frac in r.fraction_of_best.items():
            if not np.isnan(frac):
                assert frac > 0.7, (a, b, game, frac)

    r = fig11_results[PAIRS[0] + ("cocg",)]
    benchmark(lambda: r.qos.overall_fraction_of_best())
