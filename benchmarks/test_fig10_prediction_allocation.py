"""Fig 10 & §V-B1 — stage-predictive allocation versus max reservation.

The paper allocates Genshin per predicted stage and reports that the
ceilings "basically cover the actual resources consumed" while saving
27.3 % versus always reserving the 65 % maximum; across the five games
the average saving is 17.5 %.  We reproduce the per-game savings table
and the coverage claim, plus the Fig-10 robustness anecdote: transient
misjudgments are rolled back by the rehearsal callback.
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis.report import format_table
from repro.analysis.savings import allocation_savings
from repro.baselines import CoCGStrategy
from repro.workloads.experiment import ColocationExperiment

HORIZON = 2400


def _run_single(profiles, game):
    strat = CoCGStrategy()
    result = ColocationExperiment(
        {game: profiles[game]}, strat, horizon=HORIZON, seed=17
    ).run()
    return strat, result


def test_fig10_per_game_savings(profiles, benchmark):
    rows = []
    savings_list = []
    transients = 0
    for game in ("genshin", "dota2", "csgo", "devil_may_cry", "contra"):
        strat, result = _run_single(profiles, game)
        telemetry = result.telemetry
        static = profiles[game].library.max_peak().array
        total_saving = []
        coverage = []
        for sid in telemetry.session_ids:
            alloc = telemetry.allocation_series(sid)
            demand = telemetry.true_demand_series(sid)
            s = allocation_savings(alloc, demand, static)
            total_saving.append(s.savings_fraction)
            coverage.append(s.coverage)
        for ctl in strat.scheduler.sessions.values():
            transients += ctl.adjuster.transients_reverted
        saving = float(np.mean(total_saving))
        rows.append([game, float(static.max()), saving * 100, float(np.mean(coverage)) * 100])
        savings_list.append(saving)

    avg = float(np.mean(savings_list)) * 100
    rows.append(["AVERAGE (paper: 17.5 %)", "", avg, ""])
    print_block(
        format_table(
            ["game", "static max %", "saving vs max %", "demand covered %"],
            rows,
            title="Fig 10 / §V-B1: stage-predictive allocation savings",
        )
    )

    # Shape claims: every multi-stage game saves versus max reservation
    # (Contra's two stages cost nearly the same, so it has nothing to
    # save — the flat line of the paper's own Fig-14 discussion); the
    # average saving is double-digit (paper: 17.5 %); coverage stays
    # high (paper: "basically cover the actual resources consumed").
    genshin_s, dota2_s, csgo_s, dmc_s, contra_s = savings_list
    for s in (genshin_s, dota2_s, csgo_s, dmc_s):
        assert s > 0.08, savings_list
    assert contra_s > -0.05
    assert 10 <= avg <= 35
    assert all(row[3] == "" or row[3] > 65 for row in rows)

    # Genshin-specific: the paper's headline 27.3 % saving.
    assert 18 <= genshin_s * 100 <= 38

    strat, result = _run_single(profiles, "genshin")
    telemetry = result.telemetry
    sid = telemetry.session_ids[0]
    benchmark(lambda: telemetry.allocation_series(sid))
