"""Lint analyzer speed: cold vs warm full-tree analysis.

The whole-program phase (CG010–CG013) re-runs every time — it is cheap
graph work — but the per-file phase dominates a cold run: read, parse,
per-file rules, and module summarisation for ~100 files.  The
content-hash cache makes a warm run skip all of that for unchanged
files, so the invariant this bench *asserts* (not just reports) is the
incremental contract: a warm run re-parses nothing — with the effect
system (CG015–CG018), the shard certification (CG019–CG022), and the
``effects.json``/``shardplan.json`` exports enabled, which run entirely
from cached summaries — and after touching one module only that module
is re-analyzed while project findings are still recomputed from the
full summary set.  The shard plan additionally has a project-level
memo keyed on the summary content hashes: a fully warm run serves the
byte-identical certificate without re-deriving the call graph.
"""

import shutil
import time
from pathlib import Path

from benchmarks.conftest import print_block
from repro.analysis.report import format_table
from repro.lint import (
    LintCache,
    all_project_rules,
    all_rules,
    cache_signature,
    lint_paths,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _timed_lint(tree, cache):
    t0 = time.perf_counter()
    result = lint_paths([tree], cache=cache, effects=True, shard_plan=True)
    return result, time.perf_counter() - t0


def test_lint_cold_vs_warm(tmp_path):
    tree = tmp_path / "src"
    shutil.copytree(REPO_ROOT / "src", tree,
                    ignore=shutil.ignore_patterns("__pycache__"))
    cache_file = tmp_path / "lint_cache.json"
    signature = cache_signature(all_rules(), all_project_rules())

    cold_cache = LintCache.load(cache_file, signature)
    cold, cold_s = _timed_lint(tree, cold_cache)
    cold_cache.save()
    assert cold.ok, [f.format() for f in cold.findings]
    assert cold.files_reparsed == cold.files_checked

    warm_cache = LintCache.load(cache_file, signature)
    warm, warm_s = _timed_lint(tree, warm_cache)
    warm_cache.save()
    assert warm.ok
    # The incremental contract: a warm run re-parses nothing, and the
    # effects phase — inference + rendered effects.json — is recomputed
    # from cached summaries to byte-identical output.
    assert warm.files_reparsed == 0
    assert warm.files_checked == cold.files_checked
    assert cold.effects is not None and warm.effects is not None
    assert warm.effects == cold.effects
    # Shard-plan memo: the cold run derived the certificate and stored
    # it keyed on the summary content hashes; the warm run must serve
    # byte-identical text from the cache with zero re-parses.
    assert cold.shard_plan is not None and warm.shard_plan is not None
    assert not cold.shard_plan_from_cache
    assert warm.shard_plan_from_cache
    assert warm.shard_plan == cold.shard_plan

    # Touch one module: only it may be re-analyzed.  (Project findings
    # are recomputed from summaries either way, so cross-module rules
    # stay sound without re-parsing reverse dependencies.)
    touched = tree / "repro" / "serve" / "slo.py"
    touched.write_text(touched.read_text() + "\n# touched by bench\n")
    touch_cache = LintCache.load(cache_file, signature)
    touch, touch_s = _timed_lint(tree, touch_cache)
    assert touch.ok
    assert touch.files_reparsed == 1
    # The touched tree is a different summary set, so the shard-plan
    # memo must miss and the certificate be re-derived (a trailing
    # comment changes no summary facts, so the bytes still match).
    assert not touch.shard_plan_from_cache
    assert touch.shard_plan == cold.shard_plan

    rows = [
        ["cold (empty cache)", cold.files_checked, cold.files_reparsed,
         f"{cold_s * 1000:.0f}"],
        ["warm (no changes)", warm.files_checked, warm.files_reparsed,
         f"{warm_s * 1000:.0f}"],
        ["warm (1 file touched)", touch.files_checked, touch.files_reparsed,
         f"{touch_s * 1000:.0f}"],
    ]
    print_block(
        format_table(
            ["run", "files checked", "files re-parsed", "wall (ms)"],
            rows,
            title="repro.lint: cold vs warm full-tree analysis",
        )
        + f"\nwarm speedup on per-file phase: {cold_s / max(warm_s, 1e-9):.1f}x"
    )
