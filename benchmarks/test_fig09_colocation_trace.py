"""Fig 9 — co-location of Genshin Impact and DOTA2 under CoCG.

The paper's trace shows the two games' combined utilization staying
below the 95 % cap while each reaches its own peak at different times,
with the regulator stretching a Genshin loading screen (≈ 15 s) when
DOTA2 peaks.  We run the same pair under CoCG and verify the trace-level
claims: cap respected, both games reach real peaks, peaks staggered, and
loading holds actually used.
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis.report import format_series, format_table
from repro.baselines import CoCGStrategy
from repro.workloads.experiment import ColocationExperiment

HORIZON = 2400


def test_fig09_genshin_dota2_trace(profiles, benchmark):
    pair = {k: profiles[k] for k in ("genshin", "dota2")}
    strat = CoCGStrategy()
    result = ColocationExperiment(pair, strat, horizon=HORIZON, seed=42).run()

    total_gpu = result.total_usage[:, 1]
    # 60-second means for the printed series (the figure's time axis).
    window = 60
    coarse = total_gpu[: len(total_gpu) // window * window].reshape(-1, window).mean(1)

    per_game_peak = {}
    for name in pair:
        peaks = []
        for sid in result.telemetry.session_ids:
            if sid.startswith(f"{name}-r"):
                peaks.append(result.telemetry.true_usage_series(sid).peak()[1])
        per_game_peak[name] = max(peaks)

    scheduler = strat.scheduler
    rows = [
        ["combined GPU peak (cap 95)", float(result.peak_total_usage[1])],
        ["genshin max GPU usage", per_game_peak["genshin"]],
        ["dota2 max GPU usage", per_game_peak["dota2"]],
        ["co-located seconds", result.colocated_seconds],
        ["seconds over cap", result.over_cap_seconds],
        ["loading holds (time stealing)", scheduler.regulator.holds_started],
        ["total stolen loading seconds", scheduler.regulator.hold_seconds_total],
    ]
    # The paper narrates Fig 9 as five periods of staggering decisions;
    # our scheduler's decision log tells the same story.
    story = [
        d for d in scheduler.decision_log
        if d.action in ("hold", "stage-end", "callback", "transient-revert")
    ]
    story_lines = [
        f"  t={d.time:6.0f}  {d.session_id:14}  {d.action:16} {d.detail[:48]}"
        for d in story[:16]
    ]
    print_block(
        format_table(["metric", "value"], rows, title="Fig 9: Genshin + DOTA2 under CoCG")
        + "\n\n"
        + format_series("combined GPU utilization (60 s means)", coarse)
        + "\n\nscheduler decisions (first 16 staggering events):\n"
        + "\n".join(story_lines)
    )

    # The paper's claims, at trace level:
    assert result.over_cap_seconds == 0
    assert result.peak_total_usage[1] <= 95 + 1e-6
    # Both games genuinely reach their high stages while co-located …
    assert per_game_peak["genshin"] > 55
    assert per_game_peak["dota2"] > 35
    # … yet their peak sum exceeds the cap, so the peaks must have been
    # staggered in time (the whole point of the figure).
    assert per_game_peak["genshin"] + per_game_peak["dota2"] > 95
    assert result.colocated_seconds > 0.5 * HORIZON
    # Time stealing fired at least once over the window.
    assert scheduler.regulator.holds_started >= 1

    def one_control_cycle():
        strat.control(HORIZON, result.telemetry)

    benchmark(one_control_cycle)
