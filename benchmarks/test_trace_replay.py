"""Trace record/replay benchmark: recording must stay cheap, replay honest.

Drives one gateway-fronted fleet experiment three ways —

* plain (no recorder attached),
* recorded (``trace=TraceRecorder``, same seeds),
* replayed (the recorded trace driven back through a fresh fleet) —

and checks the ISSUE's acceptance bars:

* **behavioural transparency** — attaching a recorder does not change
  the fleet telemetry digest;
* **< 10 % record overhead** — best-of-N wall time with recording
  enabled stays within ``1.10 × plain + epsilon``;
* **digest-stable replay** — the replayed run reproduces the recorded
  fleet digest byte-for-byte.

Timings land in ``BENCH_trace.json`` (uploaded by the CI trace-smoke
job next to the generated ``.cgtrace`` artifact).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.cluster.experiment import FleetExperiment
from repro.games.catalog import build_catalog
from repro.trace import (
    RunConfig,
    TraceRecorder,
    build_cluster,
    build_profiles,
    replay_document,
)

from benchmarks.conftest import HARNESS_SEED

HORIZON = 600           # simulated seconds
RATE = 6.0              # arrivals per minute
REPEATS = 3             # best-of-N to shed scheduler noise
MAX_OVERHEAD = 0.10     # the ISSUE's record-overhead budget
EPSILON = 0.05          # seconds of absolute slack for short runs

CONFIG = RunConfig(
    games=("contra",),
    nodes=2,
    horizon=HORIZON,
    rate_per_minute=RATE,
    seed=HARNESS_SEED,
)


@pytest.fixture(scope="module")
def trace_profiles():
    """The config's (cheap, dtc-only) profiles, built once."""
    return build_profiles(CONFIG)


def timed_run(profiles, *, recorded):
    """One live run; returns (elapsed, result, recorder-or-None)."""
    catalog = build_catalog()
    cluster = build_cluster(CONFIG, profiles)
    recorder = (
        TraceRecorder(seed=CONFIG.seed, config=CONFIG.to_dict())
        if recorded
        else None
    )
    t0 = time.perf_counter()
    result = FleetExperiment(
        cluster,
        [catalog[g] for g in CONFIG.games],
        horizon=CONFIG.horizon,
        rate_per_minute=CONFIG.rate_per_minute,
        seed=CONFIG.seed,
        detect_interval=CONFIG.detect_interval,
        trace=recorder,
    ).run()
    return time.perf_counter() - t0, result, recorder


def test_trace_record_replay_overhead(trace_profiles):
    # Interleave the repeats so drift (cache warmth, CPU frequency)
    # hits both modes evenly; keep the best of each.
    t_plain, t_recorded, t_replay = [], [], []
    digest_plain = digest_recorded = None
    recorder = None
    for _ in range(REPEATS):
        dt, result, _ = timed_run(trace_profiles, recorded=False)
        t_plain.append(dt)
        digest_plain = result.telemetry_digest
        dt, result, recorder = timed_run(trace_profiles, recorded=True)
        t_recorded.append(dt)
        digest_recorded = result.telemetry_digest

    document = recorder.document
    report = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        report = replay_document(document, profiles=trace_profiles)
        t_replay.append(time.perf_counter() - t0)

    best_plain, best_recorded = min(t_plain), min(t_recorded)
    best_replay = min(t_replay)
    overhead = best_recorded / best_plain - 1.0
    speedup = best_plain / best_replay

    stats = {
        "horizon": HORIZON,
        "rate_per_minute": RATE,
        "repeats": REPEATS,
        "arrivals": len(document.arrivals),
        "trace_records": document.trailer.records,
        "seconds_plain": round(best_plain, 4),
        "seconds_recorded": round(best_recorded, 4),
        "record_overhead_fraction": round(overhead, 4),
        "budget_fraction": MAX_OVERHEAD,
        "seconds_replay": round(best_replay, 4),
        "replay_speedup_vs_live": round(speedup, 4),
        "fleet_digest": document.trailer.fleet_digest,
        "replay_matched": bool(report.matched),
    }
    Path("BENCH_trace.json").write_text(
        json.dumps(stats, indent=2, sort_keys=True) + "\n"
    )

    print(f"\narrivals recorded: {len(document.arrivals):,} "
          f"({document.trailer.records} trace records)")
    print(f"plain (best):      {best_plain:.3f}s")
    print(f"recorded (best):   {best_recorded:.3f}s")
    print(f"overhead:          {overhead:+.1%} (budget {MAX_OVERHEAD:.0%})")
    print(f"replay (best):     {best_replay:.3f}s ({speedup:.2f}x vs live)")

    # Recording is behaviourally invisible ...
    assert digest_recorded == digest_plain, (
        "attaching a TraceRecorder changed the fleet telemetry digest"
    )
    # ... replay reproduces the run byte-for-byte ...
    assert report.matched, (
        f"replay diverged: {report.replayed_digest} != "
        f"{report.expected_digest}"
    )
    # ... and recording is cheap.
    assert best_recorded <= best_plain * (1.0 + MAX_OVERHEAD) + EPSILON, (
        f"record overhead {overhead:+.1%} exceeds {MAX_OVERHEAD:.0%} budget "
        f"({best_recorded:.3f}s recorded vs {best_plain:.3f}s plain)"
    )
