"""Fig 15 — next-stage prediction accuracy per game and algorithm.

The paper trains DTC, RF and GBDT per game on 75 % of the collected
samples and tests on the rest: DTC exceeds ~92 % "in most cases"; DTC
and RF drop on Genshin Impact (its task order is player-permuted) while
"GBDT remains as is".  We regenerate the full game × backend accuracy
matrix from the shared corpora.
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis.report import format_table
from repro.core.predictor import StagePredictor

GAMES = ("contra", "csgo", "dota2", "devil_may_cry", "genshin")
BACKENDS = ("dtc", "rf", "gbdt")


def test_fig15_prediction_accuracy(profiles, benchmark):
    acc = {
        (g, b): profiles[g].accuracy(b) for g in GAMES for b in BACKENDS
    }
    rows = [
        [g] + [acc[(g, b)] * 100 for b in BACKENDS] for g in GAMES
    ]
    print_block(
        format_table(
            ["game", "DTC %", "RF %", "GBDT %"],
            rows,
            title="Fig 15: next-stage prediction accuracy (held-out 25 %)",
        )
    )

    # Non-Genshin games predict well (paper: DTC > 92 % in most cases;
    # our synthetic corpora put every backend above 80 % there, with the
    # best backend above ~90 %).
    for g in GAMES:
        if g == "genshin":
            continue
        assert max(acc[(g, b)] for b in BACKENDS) > 0.85, g
        for b in BACKENDS:
            assert acc[(g, b)] > 0.72, (g, b)

    # Genshin is the hardest game for the tree models (player-permuted
    # task order), matching the paper's Fig-15 dip.
    genshin_best = max(acc[("genshin", b)] for b in BACKENDS)
    others_best = min(
        max(acc[(g, b)] for b in BACKENDS) for g in GAMES if g != "genshin"
    )
    assert genshin_best <= others_best + 0.02

    # All accuracies beat the per-game chance level by a wide margin.
    for g in GAMES:
        n_types = len(profiles[g].library.execution_types)
        chance = 1.0 / max(n_types, 2)
        for b in BACKENDS:
            assert acc[(g, b)] > chance + 0.2, (g, b)

    # Timed portion: training one DTC predictor end-to-end.
    profile = profiles["contra"]

    def train_dtc():
        predictor = StagePredictor(
            profile.library, profile.spec.category, backend="dtc", seed=1
        )
        return predictor.train(profile.corpus_segments)

    benchmark(train_dtc)


def test_fig15_dataset_policy_ablation(profiles, benchmark):
    """§IV-B1 ablation: per-category training-set selection versus the
    naive pool-everything policy.

    The paper's motivation for Fig 7's quadrants is that the *right*
    sample-selection policy recovers predictability that pooling
    destroys: per-player models capture a mobile player's favourite
    order; co-login grouping reveals which mode an MMO party queued
    for.  We train each game's DTC both ways and compare.
    """
    from benchmarks.conftest import print_block
    from repro.analysis.report import format_table
    from repro.games.category import GameCategory

    rows = []
    gains = {}
    for game in ("genshin", "dota2", "devil_may_cry"):
        profile = profiles[game]
        category_pred = StagePredictor(
            profile.library, profile.spec.category, backend="dtc", seed=1
        )
        acc_category = category_pred.train(profile.corpus_segments)
        pooled_pred = StagePredictor(
            profile.library, GameCategory.WEB, backend="dtc", seed=1
        )
        acc_pooled = pooled_pred.train(profile.corpus_segments)
        rows.append([
            game, profile.spec.category.dataset_policy,
            acc_category * 100, acc_pooled * 100,
            (acc_category - acc_pooled) * 100,
        ])
        gains[game] = acc_category - acc_pooled
    print_block(
        format_table(
            ["game", "policy", "per-category %", "pooled %", "gain pts"],
            rows,
            title="§IV-B1 ablation: category-aware datasets vs pool-all",
        )
    )

    # The structured policies must help where their structure exists —
    # Genshin's per-player favourites and DOTA2's co-login context are
    # invisible to the pooled policy.  Gains are modest at this corpus
    # size but consistently positive.
    assert gains["genshin"] > 0.015
    assert gains["dota2"] > 0.01
    # And never hurt anywhere.
    for game, gain in gains.items():
        assert gain > -0.03, (game, gain)

    benchmark(
        lambda: StagePredictor(
            profiles["contra"].library, GameCategory.WEB, backend="dtc", seed=2
        ).train(profiles["contra"].corpus_segments)
    )
