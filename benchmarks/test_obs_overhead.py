"""Observability overhead benchmark: the obs hooks must stay cheap.

Drives the real serve stack (gateway → micro-batcher → distributor over
synthetic nodes, reusing :func:`test_serve_throughput.drive`) twice —
once unobserved (``obs=None``) and once with a full
:class:`repro.obs.Observer` (shared registry + pump spans) — and checks
the ISSUE's acceptance bar:

* **behavioural transparency** — the observed run admits exactly the
  requests the unobserved run admits (gateway telemetry digests match),
  and two observed runs export byte-identical artifacts;
* **< 15 % overhead** — best-of-N wall time with observation enabled
  stays within ``1.15 × unobserved + epsilon``.

Timings land in ``BENCH_obs.json`` (uploaded by the CI serve-smoke
job next to ``BENCH_serve.json``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.games.catalog import build_catalog
from repro.obs import Observer
from repro.serve.loadgen import OpenLoopLoadGen
from benchmarks.test_serve_throughput import (
    GAMES,
    RATE_PER_SECOND,
    SEED,
    drive,
)

HORIZON = 1000          # simulated seconds (~55k requests)
REPEATS = 5             # best-of-N to shed scheduler noise
MAX_OVERHEAD = 0.15     # the ISSUE's budget
EPSILON = 0.05          # seconds of absolute slack for short runs


@pytest.fixture(scope="module")
def loadgen():
    catalog = build_catalog()
    specs = [catalog[name] for name in GAMES]
    return OpenLoopLoadGen(
        specs,
        rate_per_second=RATE_PER_SECOND,
        seed=SEED,
        horizon=float(HORIZON),
        player_pool=16,
    )


def timed_drive(loadgen, *, observed):
    """One run; returns (elapsed seconds, gateway, observer-or-None)."""
    obs = Observer() if observed else None
    t0 = time.perf_counter()
    gateway, _, _ = drive(loadgen, batched=True, obs=obs, horizon=HORIZON)
    return time.perf_counter() - t0, gateway, obs


def test_obs_overhead(loadgen):
    # Interleave the repeats so drift (cache warmth, CPU frequency)
    # hits both modes evenly; keep the best of each.
    t_off, t_on = [], []
    digest_off = digest_on = None
    exports = []
    for _ in range(REPEATS):
        dt, gateway, _ = timed_drive(loadgen, observed=False)
        t_off.append(dt)
        digest_off = gateway.telemetry.digest()
        dt, gateway, obs = timed_drive(loadgen, observed=True)
        t_on.append(dt)
        digest_on = gateway.telemetry.digest()
        exports.append((obs.metrics_text(), obs.trace_digest()))

    best_off, best_on = min(t_off), min(t_on)
    overhead = best_on / best_off - 1.0

    stats = {
        "horizon": HORIZON,
        "requests": len(loadgen),
        "repeats": REPEATS,
        "seconds_unobserved": round(best_off, 4),
        "seconds_observed": round(best_on, 4),
        "overhead_fraction": round(overhead, 4),
        "budget_fraction": MAX_OVERHEAD,
        "metric_families": len(exports[-1][0].splitlines()),
        "trace_digest": exports[-1][1],
    }
    Path("BENCH_obs.json").write_text(
        json.dumps(stats, indent=2, sort_keys=True) + "\n"
    )

    print(f"\nrequests driven:   {len(loadgen):,}")
    print(f"unobserved (best): {best_off:.3f}s")
    print(f"observed (best):   {best_on:.3f}s")
    print(f"overhead:          {overhead:+.1%} (budget {MAX_OVERHEAD:.0%})")

    # Observation is behaviourally invisible ...
    assert digest_on == digest_off, (
        "attaching an Observer changed admission outcomes"
    )
    # ... and deterministic: every observed repeat exported identically.
    assert all(e == exports[0] for e in exports[1:]), (
        "observed repeats exported different artifacts"
    )
    # ... and cheap.
    assert best_on <= best_off * (1.0 + MAX_OVERHEAD) + EPSILON, (
        f"observability overhead {overhead:+.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} budget "
        f"({best_on:.3f}s observed vs {best_off:.3f}s unobserved)"
    )
