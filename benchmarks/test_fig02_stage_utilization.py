"""Fig 2 — resource utilization across the stages of one playthrough.

The paper's Fig 2 shows an 8-stage Honkai-class playthrough: execution
scenes with distinct CPU/GPU signatures separated by loading screens
whose CPU is the *highest* of the whole trace while the GPU idles
(Observations 1–3).  We regenerate the same picture from a Genshin
session and assert the three observations quantitatively.
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis.report import format_table
from repro.games.tracegen import generate_trace


def test_fig02_per_stage_utilization(catalog, benchmark):
    spec = catalog["genshin"]
    bundle = generate_trace(spec, "run-battle-fly", seed=42)

    rows = []
    stage_stats = {}
    for name, start, end in bundle.truth.stage_boundaries():
        window = bundle.series.values[start:end]
        is_loading = bool(bundle.truth.loading_mask[start])
        cpu, gpu = window[:, 0].mean(), window[:, 1].mean()
        rows.append(
            [name, "loading" if is_loading else "execution", end - start, cpu, gpu]
        )
        stage_stats.setdefault(name, []).append((cpu, gpu, is_loading))
    print_block(
        format_table(
            ["stage", "kind", "seconds", "mean CPU %", "mean GPU %"],
            rows,
            title="Fig 2: per-stage resource utilization (Genshin playthrough)",
        )
    )

    loading_cpu = [r[3] for r in rows if r[1] == "loading"]
    loading_gpu = [r[4] for r in rows if r[1] == "loading"]
    exec_rows = [r for r in rows if r[1] == "execution"]
    exec_cpu = [r[3] for r in exec_rows]
    exec_gpu = [r[4] for r in exec_rows]

    # Obs 3: loading CPU is the highest consumption in the trace while
    # its GPU is the lowest (black screen).
    assert min(loading_cpu) > max(exec_cpu)
    assert max(loading_gpu) < min(exec_gpu)

    # Obs 1: execution scenes are mutually distinguishable — the three
    # tasks span a wide GPU range.
    assert max(exec_gpu) - min(exec_gpu) > 15

    # Obs 2: loading stages delimit every scene (alternating structure).
    kinds = [r[1] for r in rows]
    assert all(a != b for a, b in zip(kinds[:-1], kinds[1:]))

    benchmark(lambda: generate_trace(spec, "run-battle-fly", seed=43))
