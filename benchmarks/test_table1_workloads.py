"""Table I — evaluated workloads: scripts and their stage-type counts.

Reproduces the paper's Table I: for every game and script, the number of
distinct stage types, both as authored (the paper's ground-truth counts)
and as recovered by the frame-grained profiler from telemetry alone.
"""

import pytest

from benchmarks.conftest import print_block
from repro.analysis.report import format_table
from repro.core.profiler import FrameGrainedProfiler, ProfilerConfig

# The paper's Table I column "# of stage type".
PAPER_TABLE1 = {
    ("dota2", "match-9-bots"): 3,
    ("dota2", "arcade-tower-defense"): 3,
    ("csgo", "match-9-bots"): 4,
    ("csgo", "training-map"): 3,
    ("devil_may_cry", "level-1"): 2,
    ("devil_may_cry", "level-2"): 4,
    ("devil_may_cry", "level-3"): 6,
    ("genshin", "run-battle-fly"): 5,
    ("genshin", "fly-battle-run"): 5,
    ("genshin", "battle-run-fly"): 5,
    ("contra", "level-1"): 2,
    ("contra", "levels-1-2"): 2,
    ("contra", "levels-1-3"): 2,
}


def test_table1_stage_type_counts(catalog, corpora, profiles, benchmark):
    rows = []
    exact = total = 0
    for (game, script), paper_n in PAPER_TABLE1.items():
        spec = catalog[game]
        authored = spec.stage_type_count(script)
        profile = profiles[game]
        prof = FrameGrainedProfiler(
            game, config=ProfilerConfig(n_clusters=len(spec.clusters))
        )
        prof.library_ = profile.library  # segment against the built library
        profiled_counts = []
        for bundle in corpora[game]:
            if bundle.script != script:
                continue
            segs = prof.segment(bundle.frames().values)
            profiled_counts.append(len({s.type_id for s in segs}))
        med = (
            sorted(profiled_counts)[len(profiled_counts) // 2]
            if profiled_counts
            else 0
        )
        description = spec.script(script).description
        rows.append([game, script, description, paper_n, authored, med])
        total += 1
        exact += authored == paper_n
    print_block(
        format_table(
            ["game", "script", "description", "paper", "authored", "profiled(med)"],
            rows,
            title="Table I: evaluated workloads — stage types per script",
        )
    )
    # Authored counts must match the paper exactly; profiled counts must
    # be within 1 (telemetry-only recovery).
    assert exact == total
    for row in rows:
        assert abs(row[5] - row[3]) <= 1, row

    # Timed portion: profiling one game's corpus end to end.
    spec = catalog["genshin"]

    def profile_genshin():
        p = FrameGrainedProfiler(
            "genshin", config=ProfilerConfig(n_clusters=len(spec.clusters))
        )
        return p.fit(corpora["genshin"][:6])

    benchmark(profile_genshin)
