"""Fig 12 — scheduling overhead: loading time vs prediction time.

The paper's argument: loading stages run 5–30 s while a full prediction
cycle (telemetry window, stage-history assembly, inference, resource
adjustment) takes 3–13 s, so the scheduler's work hides entirely inside
loading screens.  We reproduce both sides per game — observed loading
durations from the profiled libraries, prediction latency from the cost
model — and additionally measure the *simulator's* actual inference
time, which is orders of magnitude below the budget.
"""

import time

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis.report import format_table
from repro.core.predictor import PredictionCostModel

GAMES = ("dota2", "csgo", "genshin", "devil_may_cry")


def test_fig12_loading_vs_prediction(profiles, benchmark):
    cost = PredictionCostModel()
    rows = []
    for game in GAMES:
        lib = profiles[game].library
        loading = lib.stats(lib.loading_type)
        load_mean = loading.mean_duration_seconds()
        n_types = len(lib.stage_types)
        predict = {
            b: cost.predict_seconds(n_types, b) for b in ("dtc", "rf", "gbdt")
        }
        # Measured wall time of one actual predict_next call.
        predictor = profiles[game].predictors["dtc"]
        hist = lib.execution_types[:1]
        t0 = time.perf_counter()
        for _ in range(50):
            predictor.predict_next(hist)
        measured_ms = (time.perf_counter() - t0) / 50 * 1000
        rows.append([
            game, n_types, load_mean, predict["dtc"], predict["gbdt"], measured_ms
        ])
    print_block(
        format_table(
            ["game", "#types", "loading (s)", "predict dtc (s)",
             "predict gbdt (s)", "sim inference (ms)"],
            rows,
            title="Fig 12: loading time vs prediction-cycle time",
        )
    )

    for game, n_types, load_mean, p_dtc, p_gbdt, measured in rows:
        # Loading durations land in the paper's 5–30 s band.
        assert 5.0 <= load_mean <= 30.0, (game, load_mean)
        # Prediction cycles land in the paper's 3–13 s band …
        assert 3.0 <= p_dtc <= 13.0
        assert 3.0 <= p_gbdt <= 13.0
        # … and are covered by the loading window they hide in.
        assert p_dtc <= load_mean + 5.0, (game, p_dtc, load_mean)
        # The simulator's own inference is negligible.
        assert measured < 50.0

    predictor = profiles["genshin"].predictors["dtc"]
    hist = profiles["genshin"].library.execution_types[:2]
    benchmark(lambda: predictor.predict_next(hist, player_id="genshin-player-0"))
