"""Fleet-of-fleets scaling bench: shard throughput and merge overhead.

Runs the same base configuration as a fleet of N ∈ {1, 2, 4, 8}
regional shards, timing the partitioned regional execution separately
from the cross-shard merge.  Claims checked (the ISSUE's acceptance
bar):

* the ``@shard_merge_point`` aggregation is cheap: merge wall time is
  **< 10 %** of the total at every N;
* every N produces a non-empty merged digest, and the per-N digests
  are mutually distinct (regions really change the partition);
* sessions complete at every N (the shards do real scheduling work).

Timings land in ``BENCH_fleet.json`` (the CI ``fleet-smoke`` artifact):
sessions/sec and requests/sec per N, plus the merge fraction.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.fleet import FleetOfFleets, RegionSpec
from repro.sim import run_partitioned
from repro.trace.harness import RunConfig

SEED = 11
SHARD_COUNTS = (1, 2, 4, 8)
MAX_MERGE_FRACTION = 0.10

CONFIG = RunConfig(
    games=("contra", "dota2"),
    nodes=2,
    horizon=900,
    rate_per_minute=6.0,
    seed=SEED,
    players=2,
    sessions=2,
    gateway=False,
)


def measure(n: int) -> dict:
    """One fleet-of-fleets run at N shards, run and merge timed apart."""
    fleet = FleetOfFleets(
        CONFIG, [RegionSpec(f"r{i}") for i in range(n)]
    )
    shards = fleet.build_shards()  # profile training kept out of timings
    t0 = time.perf_counter()
    outcomes = run_partitioned(
        {name: shards[name].run for name in sorted(shards)}
    )
    run_seconds = time.perf_counter() - t0
    t1 = time.perf_counter()
    result = fleet.merge(outcomes)
    merge_seconds = time.perf_counter() - t1
    total = run_seconds + merge_seconds
    sessions = sum(result.completed_runs.values())
    requests = sum(result.requests_routed.values())
    return {
        "regions": n,
        "sessions": sessions,
        "requests": requests,
        "run_seconds": round(run_seconds, 4),
        "merge_seconds": round(merge_seconds, 4),
        "merge_fraction": round(merge_seconds / total, 4),
        "sessions_per_second": round(sessions / total, 2),
        "requests_per_second": round(requests / total, 2),
        "merged_digest": result.merged_digest,
    }


def test_fleet_shard_scaling():
    rows = [measure(n) for n in SHARD_COUNTS]

    stats = {
        "config": CONFIG.to_dict(),
        "shards": rows,
    }
    Path("BENCH_fleet.json").write_text(
        json.dumps(stats, indent=2, sort_keys=True) + "\n"
    )

    header = (f"{'N':>2} {'requests':>8} {'sessions':>8} "
              f"{'run s':>7} {'merge s':>8} {'merge %':>8} {'sess/s':>7}")
    print("\n" + header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['regions']:>2} {row['requests']:>8} "
              f"{row['sessions']:>8} {row['run_seconds']:>7.2f} "
              f"{row['merge_seconds']:>8.4f} "
              f"{row['merge_fraction']:>7.1%} "
              f"{row['sessions_per_second']:>7.1f}")

    for row in rows:
        assert row["merge_fraction"] < MAX_MERGE_FRACTION, (
            f"N={row['regions']}: merge took {row['merge_fraction']:.1%} "
            f"of the run (bar: {MAX_MERGE_FRACTION:.0%})"
        )
        assert row["merged_digest"]
        assert row["sessions"] > 0, f"N={row['regions']}: nothing completed"
    digests = [row["merged_digest"] for row in rows]
    assert len(set(digests)) == len(digests), (
        "different shard counts must partition the fleet differently"
    )
