"""Fig 13 — FPS of co-located games: CoCG versus GAugur.

The paper's protocol "covered all 4 games as much as possible" (CSGO,
Genshin, DOTA2, Devil May Cry co-located on one server) and measures
each game's FPS relative to the best it can reach per stage: CoCG ≈
78 % of best, GAugur ≈ 43 %, with Genshin/DMC's frame locks honoured.

GAugur's deficit comes from its *fixed* per-game limit: hosting four
games it divides the budget into static shares
(``max_share=0.24``), starving every peak stage.  CoCG instead keeps
co-location within what its stage predictions can serve (its admission
control is part of the system) and reallocates stage by stage — the two
§IV-C2 regulator strategies the paper credits for the gap.
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis.report import format_table
from repro.baselines import CoCGStrategy, GAugurStrategy
from repro.core.scheduler import CoCGConfig
from repro.platform_.qos import FpsModel
from repro.platform_.resources import ResourceVector
from repro.workloads.experiment import ColocationExperiment

GAMES = ("csgo", "genshin", "dota2", "devil_may_cry")
HORIZON = 7200


def test_fig13_fraction_of_best_fps(profiles, benchmark):
    pool = {g: profiles[g] for g in GAMES}
    rows = []
    means = {}
    locked_mean_fps = {}
    for strat in (
        CoCGStrategy(config=CoCGConfig(overshoot_tolerance=5.0)),
        GAugurStrategy(max_share=0.24),
    ):
        r = ColocationExperiment(pool, strat, horizon=HORIZON, seed=7).run()
        fracs = []
        for game in GAMES:
            frac = r.fraction_of_best[game]
            if np.isnan(frac):
                rows.append([strat.name, game, "not hosted", ""])
                continue
            fracs.append(frac)
            rows.append([strat.name, game, frac * 100,
                         r.violation_fraction[game] * 100])
            if strat.name == "cocg" and game in ("genshin", "devil_may_cry"):
                fps = [
                    r.qos.report(sid).mean_fps
                    for sid in r.qos.session_ids
                    if sid.startswith(f"{game}-r")
                ]
                locked_mean_fps[game] = float(np.mean(fps))
        means[strat.name] = float(np.mean(fracs))

    print_block(
        format_table(
            ["strategy", "game", "% of best FPS", "% time < 30 FPS"],
            rows,
            title="Fig 13: FPS of co-located games (4-game protocol)",
        )
        + f"\n\nmean fraction of best:  CoCG {means['cocg']*100:.1f} %  |  "
        + f"GAugur {means['gaugur']*100:.1f} %   (paper: 78 % vs 43 %)"
    )

    # The paper's ordering and rough magnitudes.
    assert means["cocg"] > 0.70
    assert means["gaugur"] < 0.60
    assert means["cocg"] - means["gaugur"] > 0.20

    # Locked titles stay playable under CoCG: mean FPS above the 30-FPS
    # floor for the 60-lock games the paper calls out.
    for game, fps in locked_mean_fps.items():
        assert fps > 30, (game, fps)

    model = FpsModel()
    demand = ResourceVector(cpu=40, gpu=60)
    allocation = ResourceVector(cpu=35, gpu=50)
    benchmark(lambda: model.fps(90, demand, allocation, frame_lock=60))
